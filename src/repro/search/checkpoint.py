"""Search checkpoint / resume (§4's "restart failed tasks", writ large).

A 6-hour, 1,024-node search that dies at hour 5 must not restart from
scratch.  This module serializes everything the search loop needs to
continue a run deterministically:

* per-agent **iteration boundaries** — the virtual time at which the
  agent last started an iteration, its policy's flat parameter vector
  (PR 1's ``get_flat``), its RNG bit-generator state, its convergence
  counter, and how much of its evaluation cache existed at that point;
* the **global reward records** of all completed iterations;
* the **parameter-server state** (recent-update window, round/push
  counters, active-agent count), excluding pushes from in-flight
  iterations;
* which agents had already finished (converged, stopped, or crashed).

Resume rebuilds a fresh :class:`~repro.search.runner.NasSearch`, applies
the checkpoint, and restarts each unfinished agent *at its own boundary
time* with its restored state.  The agent re-samples the same
architectures with its restored RNG, re-submits its in-flight batch, and
proceeds — re-doing at most one iteration of work per agent, exactly
like Balsam re-running the tasks of a killed pilot job.

Determinism: with the default instant parameter exchange
(``ps_service_time=0``) and a fault-free service, every agent sits at a
batch barrier or an iteration boundary whenever a checkpoint fires, so
the replayed trajectory reproduces the uninterrupted run's remaining
records exactly (up to the ordering of same-instant completions).  Under
active fault injection, job ids — and therefore fault draws — shift
after resume, so the continuation is a statistically equivalent run
rather than a bitwise replay.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..nas.arch import Architecture
from ..rewards.base import EvalResult
from ..util.atomicio import atomic_write_json
from .base import RewardRecord

__all__ = ["AgentBoundary", "AgentCheckpoint", "SearchCheckpoint"]

FORMAT_VERSION = 1


@dataclass
class AgentBoundary:
    """State of one agent at the start of its last begun iteration."""

    time: float                       # virtual seconds at the boundary
    iteration: int                    # 0-based index of the iteration
    rng_state: dict                   # numpy bit-generator state
    policy_flat: np.ndarray | None    # packed parameters (None for RDM)
    opt_state: dict | None            # Adam moments (None for RDM)
    consecutive_cached: int
    cache_len: int                    # cache entries existing at boundary
    #: reward records this agent had appended at the boundary.  A sync
    #: agent parked at the barrier has already recorded its in-flight
    #: iteration; resume drops those records and lets the replay
    #: re-record them.
    num_records: int
    num_submitted: int
    num_cache_hits: int
    num_failed: int
    #: the agent's rolling trajectory digest at the boundary (see
    #: :mod:`repro.verify.fingerprint`); "" on checkpoints written
    #: before digests existed (resume falls back to the genesis digest)
    traj_digest: str = ""
    #: optimizer learning rate at the boundary — only recorded (and
    #: serialized) under guard-mode "recover", where rollbacks back the
    #: rate off from its configured value; None otherwise, keeping the
    #: guard-off checkpoint schema unchanged
    lr: float | None = None
    #: shared-history watermark (ambs/evolution): how many observations
    #: the proposer had folded when this iteration began, so a resumed
    #: agent's re-proposal reads exactly the history prefix the original
    #: one saw.  None for the RL/rdm methods (proposals depend only on
    #: per-agent state), keeping the v1 schema for them unchanged.
    proposer_seen: int | None = None


@dataclass
class AgentCheckpoint:
    """One agent's slice of a search checkpoint."""

    agent_id: int
    done: bool                        # agent already finished its loop
    converged: bool                   # finished via cache convergence
    boundary: AgentBoundary | None    # None when done
    cache_entries: list = field(default_factory=list)  # [(key, EvalResult)]
    #: final trajectory digest of a finished agent (None while running —
    #: the live digest travels on the boundary)
    traj_digest: str | None = None


@dataclass
class SearchCheckpoint:
    """Complete restartable snapshot of a running search."""

    time: float                       # virtual seconds at capture
    seed: int
    method: str
    space_name: str
    num_agents: int
    wall_time: float
    records: list[RewardRecord] = field(default_factory=list)
    agents: list[AgentCheckpoint] = field(default_factory=list)
    ps_state: dict | None = None
    converged_agents: int = 0
    failed_agents: list = field(default_factory=list)
    #: health-layer counters (repro.health): per-agent resurrection and
    #: rollback counts at capture time.  Both empty when the health
    #: layer is off, in which case they are not serialized at all —
    #: the v1 guard-off schema is pinned by the golden checkpoint test.
    agent_restarts: dict = field(default_factory=dict)
    agent_rollbacks: dict = field(default_factory=dict)
    #: process-backend quarantine state: agent_id -> poison-architecture
    #: rows (``[space, choices, kills, resubmits]``).  Empty — and not
    #: serialized — for every other backend, keeping the pinned v1
    #: schema unchanged; rides in the conditional ``health`` export.
    quarantine: dict = field(default_factory=dict)

    # -- persistence ----------------------------------------------------
    def to_json(self) -> dict:
        data = {
            "version": FORMAT_VERSION,
            "time": self.time,
            "seed": self.seed,
            "method": self.method,
            "space_name": self.space_name,
            "num_agents": self.num_agents,
            "wall_time": self.wall_time,
            "converged_agents": self.converged_agents,
            "failed_agents": [list(fa) for fa in self.failed_agents],
            "ps_state": self.ps_state,
            "records": [_record_to_json(r) for r in self.records],
            "agents": [_agent_to_json(a) for a in self.agents],
        }
        if self.agent_restarts or self.agent_rollbacks or self.quarantine:
            data["health"] = {
                "agent_restarts": {str(k): int(v) for k, v
                                   in self.agent_restarts.items()},
                "agent_rollbacks": {str(k): int(v) for k, v
                                    in self.agent_rollbacks.items()},
            }
            if self.quarantine:
                data["health"]["quarantine"] = {
                    str(k): v for k, v in self.quarantine.items()}
        return data

    @classmethod
    def from_json(cls, data: dict) -> "SearchCheckpoint":
        if data.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {data.get('version')!r}")
        health = data.get("health", {})
        return cls(
            time=float(data["time"]),
            seed=int(data["seed"]),
            method=data["method"],
            space_name=data["space_name"],
            num_agents=int(data["num_agents"]),
            wall_time=float(data["wall_time"]),
            records=[_record_from_json(r) for r in data["records"]],
            agents=[_agent_from_json(a) for a in data["agents"]],
            ps_state=data["ps_state"],
            converged_agents=int(data["converged_agents"]),
            failed_agents=[tuple(fa) for fa in data["failed_agents"]],
            agent_restarts={int(k): int(v) for k, v in
                            health.get("agent_restarts", {}).items()},
            agent_rollbacks={int(k): int(v) for k, v in
                             health.get("agent_rollbacks", {}).items()},
            quarantine={int(k): v for k, v in
                        health.get("quarantine", {}).items()},
        )

    def save(self, path: str | Path) -> Path:
        """Crash-consistently write the checkpoint as JSON (see
        :func:`repro.util.atomicio.atomic_write_json`: tmp + fsync +
        rename + directory fsync, so a crash leaves either the old or
        the new checkpoint, never a torn hybrid)."""
        return atomic_write_json(Path(path), self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "SearchCheckpoint":
        """Load a checkpoint, cleaning up a stale ``.tmp`` if present.

        A ``.tmp`` next to the checkpoint is the residue of a save torn
        by a crash; the published file is the durable truth, so the
        leftover is deleted rather than ever being read.
        """
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass
        return cls.from_json(json.loads(path.read_text()))

    def round_trip(self) -> "SearchCheckpoint":
        """JSON-encode and decode (what save/load does, without disk)."""
        return self.from_json(json.loads(json.dumps(self.to_json())))

    def fingerprint(self) -> str:
        """Determinism fingerprint of the trajectory captured so far.

        Combines the record multiset with every agent's rolling digest
        (finished agents carry it on the checkpoint, running agents on
        their boundary); comparable against
        :meth:`repro.search.base.SearchResult.fingerprint` semantics for
        runs checkpointed at the same virtual time.
        """
        from ..verify.fingerprint import trajectory_fingerprint
        digests = {}
        for agent in self.agents:
            if agent.done and agent.traj_digest:
                digests[agent.agent_id] = agent.traj_digest
            elif agent.boundary is not None and agent.boundary.traj_digest:
                digests[agent.agent_id] = agent.boundary.traj_digest
        return trajectory_fingerprint(self.records, digests,
                                      method=self.method, seed=self.seed)


# ----------------------------------------------------------------------
# JSON helpers
# ----------------------------------------------------------------------
def _result_to_json(res: EvalResult) -> list:
    return [res.reward, res.duration, res.params, res.timed_out]


def _result_from_json(data: list) -> EvalResult:
    return EvalResult(float(data[0]), float(data[1]), int(data[2]),
                      bool(data[3]))


def _record_to_json(rec: RewardRecord) -> dict:
    return {"time": rec.time, "agent_id": rec.agent_id,
            "arch": rec.arch.to_dict(), "reward": rec.reward,
            "params": rec.params, "duration": rec.duration,
            "cached": rec.cached, "timed_out": rec.timed_out}


def _record_from_json(data: dict) -> RewardRecord:
    return RewardRecord(
        time=float(data["time"]), agent_id=int(data["agent_id"]),
        arch=Architecture.from_dict(data["arch"]),
        reward=float(data["reward"]), params=int(data["params"]),
        duration=float(data["duration"]), cached=bool(data["cached"]),
        timed_out=bool(data["timed_out"]))


def _agent_to_json(agent: AgentCheckpoint) -> dict:
    b = agent.boundary
    return {
        "agent_id": agent.agent_id,
        "done": agent.done,
        "converged": agent.converged,
        "boundary": None if b is None else {
            # recover-mode only; absent keeps the guard-off v1 schema
            **({} if b.lr is None else {"lr": b.lr}),
            # shared-history methods only; absent keeps the v1 schema
            **({} if b.proposer_seen is None
               else {"proposer_seen": b.proposer_seen}),
            "time": b.time,
            "iteration": b.iteration,
            "rng_state": _jsonable(b.rng_state),
            "policy_flat": (None if b.policy_flat is None
                            else b.policy_flat.tolist()),
            "opt_state": (None if b.opt_state is None else {
                "t": int(b.opt_state["t"]),
                "m": np.asarray(b.opt_state["m"]).tolist(),
                "v": np.asarray(b.opt_state["v"]).tolist(),
            }),
            "consecutive_cached": b.consecutive_cached,
            "cache_len": b.cache_len,
            "num_records": b.num_records,
            "num_submitted": b.num_submitted,
            "num_cache_hits": b.num_cache_hits,
            "num_failed": b.num_failed,
            "traj_digest": b.traj_digest,
        },
        "cache": [[_key_to_json(key), _result_to_json(res)]
                  for key, res in agent.cache_entries],
        "traj_digest": agent.traj_digest,
    }


def _agent_from_json(data: dict) -> AgentCheckpoint:
    b = data["boundary"]
    boundary = None if b is None else AgentBoundary(
        time=float(b["time"]), iteration=int(b["iteration"]),
        rng_state=b["rng_state"],
        policy_flat=(None if b["policy_flat"] is None
                     else np.asarray(b["policy_flat"], dtype=np.float64)),
        opt_state=(None if b["opt_state"] is None else {
            "t": int(b["opt_state"]["t"]),
            "m": np.asarray(b["opt_state"]["m"], dtype=np.float64),
            "v": np.asarray(b["opt_state"]["v"], dtype=np.float64),
        }),
        consecutive_cached=int(b["consecutive_cached"]),
        cache_len=int(b["cache_len"]),
        num_records=int(b["num_records"]),
        num_submitted=int(b["num_submitted"]),
        num_cache_hits=int(b["num_cache_hits"]),
        num_failed=int(b["num_failed"]),
        traj_digest=str(b.get("traj_digest", "")),
        lr=(None if b.get("lr") is None else float(b["lr"])),
        proposer_seen=(None if b.get("proposer_seen") is None
                       else int(b["proposer_seen"])))
    cache = [(_key_from_json(key), _result_from_json(res))
             for key, res in data["cache"]]
    return AgentCheckpoint(agent_id=int(data["agent_id"]),
                           done=bool(data["done"]),
                           converged=bool(data["converged"]),
                           boundary=boundary, cache_entries=cache,
                           traj_digest=data.get("traj_digest"))


def _key_to_json(key: tuple) -> list:
    space, choices = key
    return [space, list(choices)]


def _key_from_json(data: list) -> tuple:
    return (data[0], tuple(int(c) for c in data[1]))


def _jsonable(obj):
    """Deep-convert numpy scalars/arrays inside an RNG state dict."""
    if isinstance(obj, dict):
        return {k: _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    return copy.deepcopy(obj)
