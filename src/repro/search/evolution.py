"""Regularized (aging) evolution baseline.

§7 lists "comparing our approach with extremely scalable evolutionary
approaches" as future work; this module provides that comparator on the
same substrate: asynchronous steady-state aging evolution (Real et al.,
2018) over the identical search space, evaluator, cluster, and reward
model, so RL-vs-evolution comparisons hold everything else constant.

Each worker process loops: draw a parent by tournament from the current
population (or a random architecture while the population warms up),
mutate one decision, evaluate, and insert the child; the oldest member
is evicted (aging), which is the regularization.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..evaluator.balsam import BalsamEvaluator, BalsamService
from ..hpc.cluster import Cluster, NodeAllocation
from ..hpc.sim import Simulator, Timeout
from ..nas.arch import Architecture
from ..nas.space import Structure
from ..rewards.base import RewardModel
from .base import RewardRecord, SearchConfig, SearchResult

__all__ = ["EvolutionConfig", "EvolutionSearch", "run_evolution"]


@dataclass(frozen=True)
class EvolutionConfig:
    """Aging-evolution settings (defaults follow Real et al.)."""

    population_size: int = 50
    tournament_size: int = 10
    wall_time: float = 360.0 * 60.0
    allocation: NodeAllocation = None  # type: ignore[assignment]
    seed: int = 0

    def __post_init__(self) -> None:
        if self.allocation is None:
            object.__setattr__(self, "allocation",
                               NodeAllocation.paper_256())
        if self.population_size <= 1:
            raise ValueError("population_size must be > 1")
        if not 1 <= self.tournament_size <= self.population_size:
            raise ValueError(
                "tournament_size must be in [1, population_size]")


class EvolutionSearch:
    """Asynchronous aging evolution over the simulated cluster."""

    def __init__(self, space: Structure, reward_model: RewardModel,
                 config: EvolutionConfig | None = None) -> None:
        self.space = space
        self.reward_model = reward_model
        self.config = config or EvolutionConfig()
        self.sim = Simulator()
        self.cluster = Cluster(self.sim, self.config.allocation.worker_nodes)
        self.service = BalsamService(self.sim, self.cluster)
        self.records: list[RewardRecord] = []
        self.population: deque[tuple[Architecture, float]] = deque()

    def mutate(self, arch: Architecture, rng: np.random.Generator
               ) -> Architecture:
        """Change one decision to a different uniformly drawn option."""
        nodes = self.space.variable_nodes
        choices = list(arch.choices)
        # only nodes with >1 option are mutable
        mutable = [i for i, n in enumerate(nodes) if n.num_ops > 1]
        if not mutable:
            return arch
        i = mutable[rng.integers(len(mutable))]
        new = int(rng.integers(nodes[i].num_ops - 1))
        if new >= choices[i]:
            new += 1  # skip the current value
        choices[i] = new
        return self.space.decode(choices)

    def _select_parent(self, rng: np.random.Generator) -> Architecture:
        k = min(self.config.tournament_size, len(self.population))
        idx = rng.choice(len(self.population), size=k, replace=False)
        best = max(idx, key=lambda i: self.population[i][1])
        return self.population[best][0]

    def _worker(self, worker_id: int):
        cfg = self.config
        rng = np.random.default_rng((cfg.seed, worker_id, 0xE70))
        evaluator = BalsamEvaluator(self.service, self.reward_model,
                                    agent_id=worker_id)
        yield Timeout(rng.uniform(0.0, 2.0))
        while self.sim.now < cfg.wall_time:
            if len(self.population) < cfg.population_size:
                arch = self.space.random_architecture(rng)
            else:
                arch = self.mutate(self._select_parent(rng), rng)
            yield evaluator.add_eval_batch([arch])
            for rec in evaluator.get_finished_evals():
                self.records.append(RewardRecord(
                    rec.end_time, worker_id, rec.arch, rec.reward,
                    rec.result.params, rec.result.duration, rec.cached,
                    rec.result.timed_out))
                self.population.append((rec.arch, rec.reward))
                while len(self.population) > cfg.population_size:
                    self.population.popleft()  # aging: evict the oldest

    def run(self) -> SearchResult:
        cfg = self.config
        for worker_id in range(cfg.allocation.worker_nodes):
            self.sim.process(self._worker(worker_id), name=f"evo{worker_id}")
        self.sim.run(until=cfg.wall_time)
        end_time = min(self.sim.now, cfg.wall_time)
        unique = len({rec.arch.key for rec in self.records})
        # reuse SearchResult; method recorded as "evo" via a synthetic config
        search_cfg = SearchConfig(method="rdm", allocation=cfg.allocation,
                                  wall_time=cfg.wall_time, seed=cfg.seed)
        result = SearchResult(search_cfg, self.records, self.cluster,
                              end_time, False, unique)
        return result


def run_evolution(space: Structure, reward_model: RewardModel,
                  config: EvolutionConfig | None = None) -> SearchResult:
    return EvolutionSearch(space, reward_model, config).run()
