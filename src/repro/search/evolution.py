"""Regularized (aging) evolution on the proposer seam.

§7 lists "comparing our approach with extremely scalable evolutionary
approaches" as future work; :class:`EvolutionProposer` provides that
comparator *inside* the search runtime: asynchronous steady-state aging
evolution (Real et al., 2018) riding the same broker, event stream,
checkpoints, journal, and chaos coverage as every other method
(``SearchConfig(method="evolution")``).

The population is not separate state: it is a sliding window over the
shared observation history — the newest ``population_size``
architectures observed.  Appending a child and evicting the oldest
member (the aging regularization) is exactly advancing that window, so
checkpoint resume rebuilds the population from the kept records with no
extra payload.  Each proposal draws a tournament from the current
window (or a uniform random architecture while the population warms up)
and mutates one decision of the winner.

:class:`EvolutionSearch` / :func:`run_evolution` remain as thin
deprecation shims over the runtime for pre-seam call sites; the
standalone worker-loop implementation they used to carry is gone.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..hpc.cluster import NodeAllocation
from ..nas.arch import Architecture
from ..nas.space import Structure
from ..rewards.base import RewardModel
from .base import SearchConfig, SearchResult
from .proposer import HistoryProposer, mutate_choices

__all__ = ["EvolutionProposer", "EvolutionConfig", "EvolutionSearch",
           "run_evolution"]


class EvolutionProposer(HistoryProposer):
    """Aging evolution with tournament selection over the obs window."""

    name = "evolution"

    def __init__(self, space, *, population_size: int,
                 tournament_size: int) -> None:
        super().__init__(space)
        self.population_size = population_size
        self.tournament_size = tournament_size

    @classmethod
    def build(cls, config, space, exchange):
        return cls(space, population_size=config.population_size,
                   tournament_size=config.tournament_size)

    def population(self, seen: int | None = None):
        """The live population: the newest ``population_size`` observed
        (choices, reward) pairs — aging eviction is the window edge."""
        return self.history(seen)[-self.population_size:]

    def propose(self, loop, seen=None):
        pop = self.population(seen)
        picks = np.empty((loop.batch, len(self.dims)), dtype=np.int64)
        for slot in range(loop.batch):
            if len(pop) < self.population_size:
                picks[slot] = loop.rng.integers(0, self.dims,
                                                size=len(self.dims))
            else:
                parent = self._tournament(loop.rng, pop)
                picks[slot] = mutate_choices(self.space, parent, loop.rng)
        return picks

    def _tournament(self, rng, pop) -> tuple:
        """Best of ``tournament_size`` members drawn without replacement
        (NaN rewards from failed evals rank below everything)."""
        k = min(self.tournament_size, len(pop))
        idx = rng.choice(len(pop), size=k, replace=False)
        best = max(idx, key=lambda i: (-np.inf if np.isnan(pop[i][1])
                                       else pop[i][1]))
        return pop[best][0]


# ---------------------------------------------------------------------
# Deprecated standalone API, now a shim over the runtime-native method.
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class EvolutionConfig:
    """Aging-evolution settings (defaults follow Real et al.).

    Deprecated alongside :class:`EvolutionSearch` — new code passes
    ``population_size`` / ``tournament_size`` on a
    :class:`~repro.search.base.SearchConfig` with
    ``method="evolution"``.
    """

    population_size: int = 50
    tournament_size: int = 10
    wall_time: float = 360.0 * 60.0
    allocation: NodeAllocation = None  # type: ignore[assignment]
    seed: int = 0

    def __post_init__(self) -> None:
        if self.allocation is None:
            object.__setattr__(self, "allocation",
                               NodeAllocation.paper_256())
        if self.population_size <= 1:
            raise ValueError("population_size must be > 1")
        if not 1 <= self.tournament_size <= self.population_size:
            raise ValueError(
                "tournament_size must be in [1, population_size]")

    def to_search_config(self) -> SearchConfig:
        return SearchConfig(method="evolution", allocation=self.allocation,
                            wall_time=self.wall_time, seed=self.seed,
                            population_size=self.population_size,
                            tournament_size=self.tournament_size)


class EvolutionSearch:
    """Deprecated shim: runs ``method="evolution"`` through
    :class:`~repro.search.runner.NasSearch` and mirrors the old
    ``records`` / ``population`` attributes."""

    def __init__(self, space: Structure, reward_model: RewardModel,
                 config: EvolutionConfig | None = None) -> None:
        self.space = space
        self.reward_model = reward_model
        self.config = config or EvolutionConfig()
        self.records: list = []
        self.population: deque[tuple[Architecture, float]] = deque()

    def mutate(self, arch: Architecture, rng: np.random.Generator
               ) -> Architecture:
        """Change one decision to a different uniformly drawn option."""
        return self.space.decode(
            mutate_choices(self.space, arch.choices, rng))

    def run(self) -> SearchResult:
        from .runner import run_search   # lazy: avoids an import cycle
        result = run_search(self.space, self.reward_model,
                            self.config.to_search_config())
        self.records = result.records
        self.population = deque(
            (rec.arch, rec.reward)
            for rec in result.records[-self.config.population_size:])
        return result


def run_evolution(space: Structure, reward_model: RewardModel,
                  config: EvolutionConfig | None = None) -> SearchResult:
    """Deprecated: use ``run_search`` with ``method="evolution"``."""
    warnings.warn(
        "run_evolution/EvolutionSearch are deprecated; use "
        "run_search(space, reward_model, SearchConfig(method='evolution', "
        "population_size=..., tournament_size=...))",
        DeprecationWarning, stacklevel=2)
    return EvolutionSearch(space, reward_model, config).run()
