"""The proposer seam: how the next batch of architectures is chosen.

The agent loop (:mod:`repro.search.loop`) runs one cycle — propose,
evaluate, observe — and delegates the first and last step to a
:class:`Proposer`.  Proposal (which architectures to try next) is a
different concern from parameter *exchange* (how RL agents share policy
updates, :mod:`repro.search.exchange`): the RL methods pair a
:class:`PolicyProposer` with their a3c/a2c exchange, while non-RL
methods (random, AMBS, evolution) ride a no-op exchange and keep all
their intelligence on this seam.

One proposer instance is shared by every agent of a search (built by
the runner next to the exchange).  The contract:

* ``propose(loop, seen=None)`` — return the next ``(batch, T)`` action
  matrix for ``loop``'s agent, drawing randomness only from
  ``loop.rng`` so trajectories stay seed-deterministic and boundary
  resume re-proposes the in-flight batch exactly;
* ``observe(loop, actions, rewards)`` — a *generator* the loop drives
  with ``yield from`` after the batch evaluated; RL methods run their
  PPO update and exchange round here (possibly waiting on simulator
  events), history methods fold the observations into shared state;
* ``seen()`` — the shared-history watermark at this instant (``None``
  for methods whose proposals depend only on per-agent state), captured
  into each iteration boundary so a resumed agent re-proposes from
  exactly the history prefix it originally saw;
* ``rebuild(records)`` / ``export_state`` / ``restore_state`` —
  checkpoint plumbing.  History proposers derive their entire state
  from the reward-record stream, so resume rebuilds it from the
  checkpoint's (boundary-trimmed) records instead of serializing a
  second copy; the export/restore pair exists for proposers that ever
  need state beyond the records.

Registering a new method is one :class:`Proposer` subclass plus one
:class:`~repro.search.methods.SearchMethod` row in
:data:`~repro.search.methods.SEARCH_METHODS`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Proposer", "RandomProposer", "PolicyProposer",
           "HistoryProposer", "mutate_choices"]


def mutate_choices(space, choices, rng: np.random.Generator) -> tuple:
    """Change one decision of ``choices`` to a different uniformly
    drawn option (the aging-evolution mutation, Real et al. 2018);
    shared by the evolution proposer and the AMBS candidate generator.
    """
    nodes = space.variable_nodes
    out = list(choices)
    mutable = [i for i, n in enumerate(nodes) if n.num_ops > 1]
    if not mutable:
        return tuple(out)
    i = mutable[rng.integers(len(mutable))]
    new = int(rng.integers(nodes[i].num_ops - 1))
    if new >= out[i]:
        new += 1    # skip the current value
    out[i] = new
    return tuple(out)


class Proposer:
    """Base contract between the agent loop and architecture proposal."""

    name = "?"
    #: whether the method learns a policy (the runner builds per-agent
    #: LSTMPolicy/PPOUpdater pairs only when True)
    learns = False

    @classmethod
    def build(cls, config, space, exchange) -> "Proposer":
        """Construct the search's shared proposer instance."""
        raise NotImplementedError

    # -- the seam itself ----------------------------------------------
    def propose(self, loop, seen: int | None = None) -> np.ndarray:
        """The next ``(batch, T)`` action matrix for ``loop``'s agent."""
        raise NotImplementedError

    def observe(self, loop, actions: np.ndarray, rewards: np.ndarray):
        """Digest the evaluated batch; a generator (``yield from``)."""
        raise NotImplementedError
        yield   # pragma: no cover — marks this as a generator function

    # -- checkpoint plumbing ------------------------------------------
    def seen(self) -> int | None:
        """Shared-history watermark for boundary capture (None =
        proposals depend only on per-agent state, nothing to pin)."""
        return None

    def rebuild(self, records) -> None:
        """Re-fold shared state from the (trimmed) reward records a
        checkpoint restore or resurrection kept."""

    def export_state(self) -> dict | None:
        """State beyond what ``rebuild`` recovers from the records
        (None for every built-in proposer)."""
        return None

    def restore_state(self, state: dict | None) -> None:
        """Inverse of :meth:`export_state`."""


class RandomProposer(Proposer):
    """RDM baseline: uniform random action rows, no observation state.

    Consumes exactly one vectorized ``rng.integers`` draw per batch —
    the pre-seam RDM sampling, bit for bit.
    """

    name = "rdm"

    def __init__(self, space) -> None:
        self.dims = np.array(space.action_dims)

    @classmethod
    def build(cls, config, space, exchange):
        return cls(space)

    def propose(self, loop, seen=None):
        return loop.rng.integers(0, self.dims,
                                 size=(loop.batch, len(self.dims)))

    def observe(self, loop, actions, rewards):
        return
        yield   # pragma: no cover — RDM never learns


class PolicyProposer(Proposer):
    """RL proposal: sample the agent's LSTM policy, learn via PPO, and
    run the configured exchange round.

    ``observe`` is the pre-seam ``_learn`` body unchanged: hook
    transforms around ``update_delta``, the exchange round (a3c push /
    a2c barrier — the only part that may wait on simulator events), and
    the average applied in place of the local delta.
    """

    name = "policy"
    learns = True

    def __init__(self, exchange) -> None:
        self.exchange = exchange
        #: in-flight rollout per agent between propose and observe
        self._rollouts: dict[int, object] = {}

    @classmethod
    def build(cls, config, space, exchange):
        return cls(exchange)

    def propose(self, loop, seen=None):
        rollout = loop.policy.sample(loop.batch, loop.rng)
        self._rollouts[loop.agent_id] = rollout
        return rollout.actions

    def observe(self, loop, actions, rewards):
        rollout = self._rollouts.pop(loop.agent_id)
        loop.hooks.before_update(loop)
        delta, stats = loop.updater.update_delta(rollout, rewards)
        delta, push_delta = loop.hooks.after_update(loop, delta, delta,
                                                    stats)
        avg = yield from self.exchange.on_gradient(loop.agent_id,
                                                   push_delta,
                                                   loop.iteration)
        # update_delta already applied the local delta; replace it with
        # the exchange's average
        loop.policy.add_flat(avg - delta)
        self.exchange.on_round_end(loop.agent_id, loop.iteration)


class HistoryProposer(Proposer):
    """Shared-history base for AMBS and evolution.

    All state is one append-only observation list fed in global
    reward-record order (each agent observes its own batch in the same
    callback that appends its records, so the two streams are
    identical).  That makes resume exact with no new checkpoint
    payload: ``rebuild`` re-folds the checkpoint's kept records, and
    the per-boundary ``proposer_seen`` watermark re-proposes each
    agent's in-flight batch from the history prefix it originally saw.
    """

    def __init__(self, space) -> None:
        self.space = space
        self.dims = np.array(space.action_dims)
        #: (choices tuple, reward) in global observation order
        self._obs: list[tuple[tuple, float]] = []

    def observe(self, loop, actions, rewards):
        for row, reward in zip(actions, rewards):
            self._obs.append((tuple(int(c) for c in row), float(reward)))
        return
        yield   # pragma: no cover — history folding never waits

    def seen(self) -> int:
        return len(self._obs)

    def rebuild(self, records) -> None:
        self._obs = [(tuple(int(c) for c in rec.arch.choices),
                      float(rec.reward)) for rec in records]

    def history(self, seen: int | None) -> list[tuple[tuple, float]]:
        """The observation prefix a proposal may read: everything on a
        live iteration, the boundary watermark on a resumed one."""
        return self._obs if seen is None else self._obs[:seen]
