"""The search-method registry: proposer × exchange pairings.

A *method* is what ``SearchConfig.method`` names: a
:class:`~repro.search.proposer.Proposer` (how the next batch is chosen)
paired with an :class:`~repro.search.exchange.ExchangeStrategy` (how RL
agents share policy updates).  The paper's three modes pair the policy
proposer with their exchange; the non-RL methods keep all their logic
on the proposer seam and ride the no-op
:class:`~repro.search.exchange.RandomExchange`.

Everything method-specific in the runtime consults this table — config
validation, the runner's composition root, CLI ``--method`` choices,
``repro search --list-methods``, the chaos matrix, and the bench
comparison — so registering a new method is one proposer class plus one
:class:`SearchMethod` row here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events import EventSink
from ..hpc.sim import Simulator
from .ambs import AmbsProposer
from .evolution import EvolutionProposer
from .exchange import (A2CExchange, A3CExchange, ExchangeStrategy,
                       RandomExchange)
from .proposer import PolicyProposer, Proposer, RandomProposer

__all__ = ["SearchMethod", "SEARCH_METHODS", "build_exchange",
           "build_proposer"]


@dataclass(frozen=True)
class SearchMethod:
    """One registered pairing of proposer and exchange."""

    name: str
    proposer: type[Proposer]
    exchange: type[ExchangeStrategy]
    #: whether the runner builds per-agent LSTM policies + PPO updaters
    learns: bool
    #: one-line description for ``repro search --list-methods``
    summary: str


SEARCH_METHODS: dict[str, SearchMethod] = {m.name: m for m in (
    SearchMethod("a3c", PolicyProposer, A3CExchange, True,
                 "asynchronous RL: LSTM policy + PPO, rolling-average "
                 "parameter server (the paper's main mode)"),
    SearchMethod("a2c", PolicyProposer, A2CExchange, True,
                 "synchronous RL: LSTM policy + PPO, barrier-averaged "
                 "updates each round"),
    SearchMethod("rdm", RandomProposer, RandomExchange, False,
                 "uniform random search baseline (no learning)"),
    SearchMethod("ambs", AmbsProposer, RandomExchange, False,
                 "asynchronous model-based search: ridge-ensemble "
                 "surrogate, UCB acquisition, constant-liar batching"),
    SearchMethod("evolution", EvolutionProposer, RandomExchange, False,
                 "aging (regularized) evolution with tournament "
                 "selection over a sliding population"),
)}


def build_exchange(sim: Simulator, config, space,
                   sink: EventSink | None = None) -> ExchangeStrategy:
    """Instantiate the configured method's exchange (and its server)."""
    return SEARCH_METHODS[config.method].exchange.build(sim, config, space,
                                                        sink=sink)


def build_proposer(config, space, exchange) -> Proposer:
    """Instantiate the configured method's shared proposer."""
    return SEARCH_METHODS[config.method].proposer.build(config, space,
                                                        exchange)
