"""Exchange strategies: how agents share policy updates (§3.2).

The paper runs three modes — A3C (asynchronous average of recent
updates through a parameter server), A2C (synchronous barrier average),
and RDM (no learning, no exchange).  Each mode is one
:class:`ExchangeStrategy` class with a narrow contract:

* ``on_gradient(agent_id, delta, iteration)`` — a *generator* the agent
  loop delegates to with ``yield from``; it performs the exchange
  (possibly waiting on simulator events) and returns the averaged
  update the agent should apply in place of its local delta;
* ``on_round_end(agent_id, iteration)`` — called after the agent has
  applied the average, closing the agent's view of the round;
* ``leave`` / ``rejoin`` — lifecycle around agent death/resurrection;
* ``export_state`` / ``restore_state`` — checkpoint plumbing for the
  underlying server.

New modes (local-SGD, elastic averaging, ...) are one new class in
:data:`EXCHANGE_STRATEGIES` plus a pairing row in
:data:`repro.search.methods.SEARCH_METHODS`; the agent loop and runner
consult the registries, so there is no ``if mode ==`` arm left to
extend.
"""

from __future__ import annotations

import numpy as np

from ..events import BARRIER, PUSH, EventSink, emit
from ..health.recovery import DeltaSanitizer
from ..hpc.sim import Simulator
from ..rl.parameter_server import ParameterServer
from ..rl.policy import LSTMPolicy
from ..rl.sharded_ps import ShardedParameterServer

__all__ = ["ExchangeStrategy", "A3CExchange", "A2CExchange",
           "RandomExchange", "EXCHANGE_STRATEGIES"]


class ExchangeStrategy:
    """Base contract between the agent loop and the exchange substrate.

    ``ps`` is the underlying parameter server, or ``None`` for modes
    with no exchange at all; the runner still exposes it as
    ``search.ps`` for ablations and the chaos harness.
    """

    name = "?"
    #: whether the mode learns at all (RDM builds no policy/updater)
    learns = True

    def __init__(self, ps: ParameterServer | ShardedParameterServer | None,
                 sink: EventSink | None = None) -> None:
        self.ps = ps
        self.sink = sink

    @classmethod
    def build(cls, sim: Simulator, config, space,
              sink: EventSink | None = None) -> "ExchangeStrategy":
        """Construct the strategy (and its server) from a SearchConfig."""
        raise NotImplementedError

    # -- the exchange itself ------------------------------------------
    def on_gradient(self, agent_id: int, delta: np.ndarray,
                    iteration: int):
        """Exchange ``delta``; a generator returning the average to apply."""
        raise NotImplementedError
        yield   # pragma: no cover — marks this as a generator function

    def on_round_end(self, agent_id: int, iteration: int) -> None:
        """Called after the agent applied the exchanged average."""

    # -- agent lifecycle ----------------------------------------------
    def leave(self, failed: bool = False) -> None:
        """An agent left the exchange (converged, crashed, or dying for
        resurrection); a sync barrier shrinks instead of deadlocking."""
        if self.ps is not None:
            self.ps.deregister(failed=failed)

    def rejoin(self, agent_id: int) -> None:
        """A resurrected agent re-enters the exchange; any stale push
        its dead lifetime left in the current round is withdrawn."""
        if self.ps is not None:
            self.ps.register(agent_id)

    # -- checkpoint plumbing ------------------------------------------
    def export_state(self) -> dict | None:
        if isinstance(self.ps, ParameterServer):
            return self.ps.export_state()
        return None     # sharded/absent servers carry no exchange history

    def restore_state(self, state: dict | None) -> None:
        if state is not None and isinstance(self.ps, ParameterServer):
            self.ps.restore_state(state)

    # -- shared construction helpers ----------------------------------
    @staticmethod
    def _sanitizer(config) -> tuple[DeltaSanitizer | None, float | None]:
        """Ingress hygiene for the unsharded servers (guard-driven)."""
        guard = config.guard
        if guard is not None and guard.enabled:
            return DeltaSanitizer.from_guard(guard), guard.max_delta_age
        return None, None


class A3CExchange(ExchangeStrategy):
    """Asynchronous exchange: push, receive the rolling average of
    recent updates, never wait for other agents.  With a modelled
    service time (or a sharded server) the push itself takes simulated
    time; otherwise it is instantaneous."""

    name = "a3c"

    def __init__(self, ps, service_time: float = 0.0,
                 sink: EventSink | None = None) -> None:
        super().__init__(ps, sink)
        self.service_time = service_time

    @classmethod
    def build(cls, sim, config, space, sink=None):
        sanitizer, max_age = cls._sanitizer(config)
        if config.ps_shards > 1:
            # shards screen their own slices; whole-vector delta
            # hygiene is only wired for the unsharded servers
            probe = LSTMPolicy(space.action_dims, hidden=config.hidden,
                               embed_dim=config.embed_dim, seed=0)
            ps = ShardedParameterServer(
                sim, config.allocation.num_agents,
                vector_size=probe.num_params,
                num_shards=config.ps_shards,
                staleness_window=config.staleness_window,
                service_time=config.ps_service_time)
        else:
            ps = ParameterServer(
                sim, config.allocation.num_agents, mode="async",
                staleness_window=config.staleness_window,
                service_time=config.ps_service_time,
                sanitizer=sanitizer, max_delta_age=max_age)
        return cls(ps, service_time=config.ps_service_time, sink=sink)

    def on_gradient(self, agent_id, delta, iteration):
        emit(self.sink, PUSH, self.ps.sim.now, agent_id, iteration,
             mode=self.name)
        if self.service_time > 0.0:
            avg = yield self.ps.push_async_timed(delta)
        else:
            avg = self.ps.push_async(delta)
        return avg


class A2CExchange(ExchangeStrategy):
    """Synchronous exchange: all live agents meet at a barrier; the
    round's deltas are averaged and returned to everyone at once."""

    name = "a2c"

    @classmethod
    def build(cls, sim, config, space, sink=None):
        sanitizer, _ = cls._sanitizer(config)
        ps = ParameterServer(sim, config.allocation.num_agents, mode="sync",
                             staleness_window=config.staleness_window,
                             sanitizer=sanitizer)
        return cls(ps, sink=sink)

    def on_gradient(self, agent_id, delta, iteration):
        emit(self.sink, PUSH, self.ps.sim.now, agent_id, iteration,
             mode=self.name)
        avg = yield self.ps.push_sync(delta, agent_id)
        return avg

    def on_round_end(self, agent_id, iteration):
        emit(self.sink, BARRIER, self.ps.sim.now, agent_id, iteration,
             round=self.ps.num_rounds)


class RandomExchange(ExchangeStrategy):
    """RDM baseline: no policy, no updates, no server.  The seam is
    still present so the agent loop stays method-agnostic."""

    name = "rdm"
    learns = False

    @classmethod
    def build(cls, sim, config, space, sink=None):
        return cls(None, sink=sink)

    def on_gradient(self, agent_id, delta, iteration):
        return None
        yield   # pragma: no cover — never driven (RDM computes no delta)


#: exchange mode name -> strategy class.  This stays the *exchange*
#: registry (three modes, §3.2); method-level registration — which
#: proposer pairs with which exchange — lives in
#: :data:`repro.search.methods.SEARCH_METHODS`.
EXCHANGE_STRATEGIES: dict[str, type[ExchangeStrategy]] = {
    A3CExchange.name: A3CExchange,
    A2CExchange.name: A2CExchange,
    RandomExchange.name: RandomExchange,
}
