"""Write-ahead search journal + checkpoint generations (crash-anywhere
durability).

Interval checkpoints bound the re-execution window of a killed search to
one checkpoint interval.  This module shrinks it to (at most) one
*evaluation*: every :class:`~repro.events.SearchEvent` the search emits
is appended — checksummed, before the search acts on it further — to a
JSONL write-ahead journal, and checkpoints are written as verified
*generations* next to it.  Resume then becomes:

1. load the newest checkpoint generation whose sha256 verifies (falling
   back generation by generation when the newest is torn or corrupt);
2. read the journal — tolerating a torn trailing record and skipping
   interior corruption — and turn its ``eval-done`` suffix into
   per-agent :class:`~repro.evaluator.broker.ReplayEval` queues;
3. restart the search from the checkpoint; when the resumed agents
   deterministically re-submit the architectures the dead run had
   already paid for, the brokers answer from the replay queues instead
   of re-executing the reward model.

The resumed run's determinism fingerprint is bit-identical to the
uninterrupted run's, and no architecture is ever evaluated twice — no
matter where the previous run was SIGKILLed (the crash-point fuzzer in
:mod:`repro.search.chaos` proves exactly this, one kill point at a
time).

Journal record format: one JSON object per line,
``{"seq": N, "crc": C, "ev": {...}}`` where ``C`` is the CRC32 of the
canonical dump (sorted keys, compact separators) of ``ev``.  The CRC is
recomputed from the re-parsed event on read, so any bit flip inside a
record — not just ones that break JSON syntax — is detected.  Balsam
(virtual-time) searches journal and checkpoint like every other
backend, but skip evaluation replay: their evaluations are simulated
jobs whose cost is virtual anyway, and the checkpoint alone already
resumes them deterministically.
"""

from __future__ import annotations

import json
import logging
import re
import zlib
from pathlib import Path

from ..evaluator.broker import ReplayEval
from ..events import (EVAL_DONE, RESTART, EventLog, EventSink, SearchEvent)
from ..nas.arch import Architecture
from ..nas.plancache import exact_key
from ..util.atomicio import FsyncPolicy, atomic_write_json
from .checkpoint import SearchCheckpoint

__all__ = ["JournalWriter", "JournalSink", "read_journal",
           "CheckpointGenerations", "SearchJournal", "build_replay",
           "resume_durable"]

_log = logging.getLogger("repro.search.journal")

JOURNAL_NAME = "journal.jsonl"
GENERATIONS_DIR = "generations"
_GEN_RE = re.compile(r"^ckpt-(\d{8})\.json$")


def _canonical(data: dict) -> str:
    """The canonical JSON form records are checksummed over.

    ``repr`` of a float round-trips exactly through json, so dumping a
    re-parsed event reproduces the original bytes — the reader can
    verify the CRC without keeping the raw payload substring around.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _crc(data: dict) -> int:
    return zlib.crc32(_canonical(data).encode("utf-8"))


class JournalWriter:
    """Appends checksummed event records to a JSONL write-ahead journal.

    Opening an existing journal *repairs* it first: a torn trailing line
    (the half-written record of a crash mid-append) is truncated away so
    the new run's records never concatenate onto the fragment, and the
    sequence counter continues from the last valid record.  Durability
    policy is the shared :class:`~repro.util.atomicio.FsyncPolicy`:
    every record is flushed (survives process death); ``fsync_every=N``
    additionally forces every Nth record to stable storage (survives
    host death).
    """

    def __init__(self, path, fsync_every: int | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.seq = 0
        if self.path.exists():
            self._repair_tail()
            for event_seq in _scan_seqs(self.path):
                self.seq = max(self.seq, event_seq)
        self._policy = FsyncPolicy(fsync_every)
        self._fh = open(self.path, "a", encoding="utf-8")
        self.num_written = 0

    def _repair_tail(self) -> None:
        """Drop a torn trailing line (no final newline) in place."""
        with open(self.path, "r+b") as fh:
            data = fh.read()
            if not data or data.endswith(b"\n"):
                return
            cut = data.rfind(b"\n") + 1     # 0 when the only line is torn
            fh.truncate(cut)

    def append(self, event: SearchEvent) -> int:
        """Durably record one event; returns its sequence number."""
        if self._fh is None:
            raise ValueError("journal is closed")
        ev = event.to_dict()
        self.seq += 1
        line = _canonical({"seq": self.seq, "crc": _crc(ev), "ev": ev})
        self._fh.write(line + "\n")
        self._fh.flush()
        self._policy.tick(self._fh.fileno())
        self.num_written += 1
        return self.seq

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class JournalSink(EventSink):
    """Adapts a :class:`JournalWriter` into an event sink (tee it with
    any observability sink; the journal must see *every* event)."""

    def __init__(self, writer: JournalWriter) -> None:
        self.writer = writer

    def emit(self, event: SearchEvent) -> None:
        self.writer.append(event)

    def close(self) -> None:
        self.writer.close()


def _scan_seqs(path):
    """Yield the sequence numbers of the journal's valid records."""
    for _seq, event in _scan(path, collect_warnings=False)[0]:
        yield _seq


def _scan(path, collect_warnings: bool = True):
    """Parse a journal into ``([(seq, SearchEvent), ...], num_skipped)``.

    Recovery mirrors :func:`repro.events.read_events`: a torn trailing
    line is silently dropped (expected crash residue), any other
    unreadable or CRC-failing record is skipped with a warning — a
    corrupt record costs one replay entry (that evaluation re-executes),
    never the run.
    """
    out: list[tuple[int, SearchEvent]] = []
    skipped = 0
    with open(Path(path), encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
            ev = rec["ev"]
            if int(rec["crc"]) != _crc(ev):
                raise ValueError("CRC mismatch")
            event = SearchEvent(ev["kind"], ev["time"], ev.get("agent_id"),
                                ev.get("iteration"), ev.get("payload") or {})
            seq = int(rec["seq"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            if i == len(lines) - 1:
                break       # torn trailing record from a crash mid-write
            skipped += 1
            if collect_warnings:
                _log.warning("%s: skipping corrupt journal record at "
                             "line %d", path, i + 1)
            continue
        out.append((seq, event))
    return out, skipped


def read_journal(path) -> EventLog:
    """Read a journal back as an :class:`~repro.events.EventLog` (CRC
    verified per record; torn tail dropped; interior corruption skipped
    and counted in ``num_skipped``)."""
    records, skipped = _scan(path)
    return EventLog([event for _seq, event in records], num_skipped=skipped)


class CheckpointGenerations:
    """A directory of verified checkpoint generations.

    Each :meth:`save` writes ``ckpt-NNNNNNNN.json`` — the checkpoint's
    pinned v1 JSON plus one additive ``integrity`` key carrying the
    payload sha256 and the journal sequence at capture — atomically
    (tmp + fsync + rename).  :meth:`load_latest` walks the generations
    newest-first and returns the first whose digest verifies, logging a
    warning for every generation it has to discard: a crash can tear at
    most the newest file, and bit rot in it costs one generation, not
    the run.
    """

    def __init__(self, directory, keep: int = 5) -> None:
        if keep <= 0:
            raise ValueError("keep must be positive")
        self.dir = Path(directory)
        self.keep = keep

    def paths(self) -> list[Path]:
        """Existing generation files, oldest first."""
        if not self.dir.is_dir():
            return []
        return sorted(p for p in self.dir.iterdir()
                      if _GEN_RE.match(p.name))

    @staticmethod
    def _digest(data: dict) -> str:
        import hashlib
        return hashlib.sha256(_canonical(data).encode("utf-8")).hexdigest()

    def save(self, ckpt: SearchCheckpoint, journal_seq: int) -> Path:
        self.dir.mkdir(parents=True, exist_ok=True)
        existing = self.paths()
        nxt = 1
        if existing:
            nxt = int(_GEN_RE.match(existing[-1].name).group(1)) + 1
        data = ckpt.to_json()
        data["integrity"] = {"sha256": self._digest(data),
                             "journal_seq": int(journal_seq)}
        path = atomic_write_json(self.dir / f"ckpt-{nxt:08d}.json", data)
        for stale in existing[:max(0, len(existing) + 1 - self.keep)]:
            try:
                stale.unlink()
            except OSError:
                pass
        return path

    def load_latest(self) -> tuple[SearchCheckpoint, dict] | None:
        """Newest generation that verifies, as ``(checkpoint,
        integrity)``; None when no generation survives."""
        for path in reversed(self.paths()):
            try:
                data = json.loads(path.read_text())
                integrity = data.pop("integrity")
                if integrity["sha256"] != self._digest(data):
                    raise ValueError("sha256 mismatch")
                return SearchCheckpoint.from_json(data), integrity
            except (OSError, ValueError, KeyError, TypeError) as exc:
                _log.warning("%s: discarding unreadable checkpoint "
                             "generation (%s); falling back to the "
                             "previous one", path, exc)
        return None


class SearchJournal:
    """One run's durability root: ``<dir>/journal.jsonl`` plus
    ``<dir>/generations/``.  Attach via ``SearchConfig.journal_dir``
    (the runner constructs and tees it) or hand an instance to
    :class:`~repro.search.runner.NasSearch` directly."""

    def __init__(self, directory, fsync_every: int | None = None,
                 keep_generations: int = 5) -> None:
        self.dir = Path(directory)
        self.writer = JournalWriter(self.dir / JOURNAL_NAME,
                                    fsync_every=fsync_every)
        self.generations = CheckpointGenerations(
            self.dir / GENERATIONS_DIR, keep=keep_generations)
        self.sink = JournalSink(self.writer)

    @property
    def journal_path(self) -> Path:
        return self.writer.path

    def save_checkpoint(self, ckpt: SearchCheckpoint) -> Path:
        """Write a checkpoint generation stamped with the journal's
        current sequence number (every journaled record with a lower
        sequence is already reflected in the checkpoint)."""
        return self.generations.save(ckpt, journal_seq=self.writer.seq)

    def read_events(self) -> EventLog:
        if not self.journal_path.exists():
            return EventLog()
        return read_journal(self.journal_path)

    def close(self) -> None:
        self.writer.close()


def build_replay(events, checkpoint: SearchCheckpoint | None
                 ) -> dict[int, list[ReplayEval]]:
    """Turn a journal's ``eval-done`` stream into per-agent replay lists.

    Three stream features keep this correct across arbitrarily many
    crash/resume cycles:

    * ``replayed=True`` completions (a resumed run re-serving journaled
      results) are ignored — the original records are already in the
      stream, and counting both would double-feed a later resume;
    * a ``restart`` record carrying ``real_evals`` (in-run agent
      resurrection) truncates that agent's accumulated list — resume
      applies the same record-trimming the resurrection did, so the
      post-restart re-executions that follow in the stream are the
      continuation, not duplicates;
    * the checkpoint's per-agent boundary counters give the number of
      real executions already *inside* the checkpoint
      (``num_submitted - num_cache_hits``; cache hits never emit
      ``eval-done``), which is exactly the stream prefix to drop.
    """
    per_agent: dict[int, list[ReplayEval]] = {}
    for event in events:
        if event.kind == RESTART and "real_evals" in event.payload:
            lst = per_agent.get(event.agent_id)
            if lst is not None:
                del lst[int(event.payload["real_evals"]):]
            continue
        if event.kind != EVAL_DONE:
            continue
        payload = event.payload
        if payload.get("replayed") or "arch" not in payload:
            continue
        arch = Architecture.from_dict(payload["arch"])
        per_agent.setdefault(event.agent_id, []).append(ReplayEval(
            key=exact_key(arch),
            reward=float(payload["reward"]),
            duration=float(payload.get("duration", 0.0)),
            params=int(payload.get("params", 0)),
            timed_out=bool(payload.get("timed_out", False)),
            nonfinite=bool(payload.get("nonfinite", False)),
            failed=bool(payload.get("failed", False)),
            end_time=float(event.time)))
    if checkpoint is not None:
        for agent in checkpoint.agents:
            if agent.done:
                per_agent.pop(agent.agent_id, None)
                continue
            if agent.boundary is None:
                continue
            skip = agent.boundary.num_submitted \
                - agent.boundary.num_cache_hits
            lst = per_agent.get(agent.agent_id)
            if lst is not None:
                del lst[:skip]
    return {aid: lst for aid, lst in per_agent.items() if lst}


def resume_durable(space, reward_model, config, event_sink=None):
    """Rebuild a search from its journal directory, crash-anywhere.

    Returns an un-run :class:`~repro.search.runner.NasSearch` — call
    ``.run()`` on it.  Works from *any* prior state of the directory: a
    fresh (or absent) journal starts a fresh run; a journal with no
    surviving checkpoint replays everything from the start; a journal
    with generations resumes the newest verified one and replays only
    the suffix.  The same call is therefore both the first launch and
    every relaunch — exactly what a crash-looped batch script needs.

    Evaluation replay applies to the real backends (serial / thread /
    process), where re-executing a reward model costs real time; the
    balsam backend's virtual-time evaluations resume from the
    checkpoint alone.
    """
    from .runner import NasSearch       # lazy: runner imports this module

    if config.journal_dir is None:
        raise ValueError("resume_durable requires config.journal_dir")
    journal = SearchJournal(config.journal_dir,
                            fsync_every=config.journal_fsync_every)
    events = journal.read_events()
    loaded = journal.generations.load_latest()
    ckpt = loaded[0] if loaded is not None else None
    replay = None
    if config.backend != "balsam":
        replay = build_replay(events, ckpt)
    return NasSearch(space, reward_model, config, resume_from=ckpt,
                     event_sink=event_sink, journal=journal, replay=replay)
