"""Chaos harness: fault-matrix smoke of the fault-tolerant pipeline.

``make chaos`` / ``repro-chaos`` runs the same seeded NAS search under a
matrix of fault levels — none, light, moderate, heavy — and checks the
robustness invariants the fault layer promises:

* every run **completes** (no agent lost to a deadlocked barrier; the
  batch deadline and Balsam retry policy always release it);
* failures are **accounted for**, not silently dropped (failed
  evaluations surface as the paper's −1 failure reward);
* the search **degrades gracefully**: the best discovered reward stays
  within a small tolerance of the fault-free run's, because Balsam
  restarts failed tasks and the agents keep searching (§4's "tracks job
  states and restarts failed tasks").

The fault-free row doubles as a canary: it must behave bit-identically
to a search with no fault layer at all.

A second profile (``--profile numeric``) exercises the *numerical*
health layer (:mod:`repro.health`): NaN-poisoned gradients, exploding
update directions, and corrupt exchange deltas are injected into a3c and
a2c searches running under guard-mode ``recover``, and the harness
checks that the search heals — at least one policy rollback and one
agent resurrection occur, no agent is permanently lost below the restart
cap, and the best discovered reward stays finite.

Run via ``make chaos`` or::

    PYTHONPATH=src python -m repro.search.chaos --minutes 45
    PYTHONPATH=src python -m repro.search.chaos --profile numeric
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..events import EVAL_DONE
from ..health import GuardConfig
from ..hpc import NodeAllocation, TrainingCostModel
from ..hpc.faults import FaultConfig
from ..nas.arch import Architecture
from ..nas.spaces import combo_small
from ..problems.combo import COMBO_PAPER_SHAPES, combo_head
from ..rewards import SurrogateReward
from ..rewards.base import EvalResult, RewardModel
from .base import SearchConfig
from .journal import JOURNAL_NAME, read_journal, resume_durable
from .methods import SEARCH_METHODS
from .runner import NasSearch

__all__ = ["ChaosEvalModel", "CountingRewardModel", "fault_levels",
           "fault_matrix", "check_rows", "numeric_matrix",
           "check_numeric_rows", "proc_matrix", "check_proc_rows",
           "crashpoint_child", "crashpoint_matrix",
           "check_crashpoint_rows", "main"]

#: default chaos allocation: small enough to run in seconds, large
#: enough that node failures hit busy pilots
_ALLOCATION = NodeAllocation(32, 4, 3)


@dataclass
class ChaosEvalModel(RewardModel):
    """A reward model that really crashes, hangs, or stalls.

    Wraps an inner model and, per architecture, draws a deterministic
    fault: ``crash_frac`` of architectures hard-kill their worker with
    ``os._exit`` (a real segfault-equivalent no ``except`` can catch),
    ``hang_frac`` sleep past any reasonable deadline, and the rest
    optionally stall ``eval_seconds`` before answering (deterministic
    stragglers for lifecycle tests).  The draw is keyed by
    ``(seed, arch.key)`` only — the *same* architecture faults the same
    way on every attempt in every process, which is exactly what makes
    it a poison job the quarantine must catch.

    The class lives here (an importable ``src`` module, not a test
    file) because ``spawn``-context workers must re-import it by module
    path when the pickled model arrives in the child.
    """

    inner: RewardModel
    crash_frac: float = 0.0
    hang_frac: float = 0.0
    hang_seconds: float = 3600.0
    eval_seconds: float = 0.0
    seed: int = 0
    #: exit code of injected crashes (visible in WORKER_CRASH causes)
    crash_exit_code: int = 23
    plan_cache: object = field(default=None, repr=False)

    def _draw(self, arch: Architecture) -> float:
        return zlib.crc32(repr((self.seed, arch.key)).encode()) / 2.0 ** 32

    def fault_kind(self, arch: Architecture) -> str:
        """What this architecture will do: crash | hang | ok."""
        u = self._draw(arch)
        if u < self.crash_frac:
            return "crash"
        if u < self.crash_frac + self.hang_frac:
            return "hang"
        return "ok"

    def evaluate(self, arch: Architecture, agent_seed: int = 0) -> EvalResult:
        kind = self.fault_kind(arch)
        if kind == "crash":
            os._exit(self.crash_exit_code)
        if kind == "hang":
            time.sleep(self.hang_seconds)
        if self.eval_seconds > 0:
            time.sleep(self.eval_seconds)
        return self.inner.evaluate(arch, agent_seed=agent_seed)

    def set_plan_cache(self, cache) -> None:
        self.plan_cache = cache
        self.inner.set_plan_cache(cache)

    def prefetch_plan(self, arch: Architecture) -> None:
        self.inner.prefetch_plan(arch)


@dataclass
class CountingRewardModel(RewardModel):
    """Counts real ``evaluate`` calls (module-level so ``spawn``-context
    workers can unpickle it).  The crash-point fuzzer wraps the resumed
    run's reward model with it: any journal-covered evaluation that
    sneaks past the replay layer and re-executes bumps the count."""

    inner: RewardModel
    calls: int = 0
    plan_cache: object = field(default=None, repr=False)

    def evaluate(self, arch: Architecture, agent_seed: int = 0) -> EvalResult:
        self.calls += 1
        return self.inner.evaluate(arch, agent_seed=agent_seed)

    def set_plan_cache(self, cache) -> None:
        self.plan_cache = cache
        self.inner.set_plan_cache(cache)

    def prefetch_plan(self, arch: Architecture) -> None:
        self.inner.prefetch_plan(arch)


def fault_levels(minutes: float, seed: int) -> list[tuple[str,
                                                          FaultConfig | None]]:
    """The fault matrix: (name, config) rows, fault-free first.

    Rates scale with the run length so every faulted level actually
    fires: "light" sees a few node failures, "heavy" adds frequent
    failures, job crashes, stragglers, and a mid-run service outage.
    """
    span = minutes * 60.0
    return [
        ("none", None),
        ("light", FaultConfig(node_mtbf=4.0 * span,
                              node_repair_time=span / 10.0,
                              job_crash_prob=0.01, seed=seed)),
        ("moderate", FaultConfig(node_mtbf=2.0 * span,
                                 node_repair_time=span / 10.0,
                                 job_crash_prob=0.02,
                                 straggler_prob=0.05, seed=seed)),
        ("heavy", FaultConfig(node_mtbf=span,
                              node_repair_time=span / 8.0,
                              job_crash_prob=0.05,
                              straggler_prob=0.10,
                              outages=((0.45 * span, 0.55 * span),),
                              seed=seed)),
    ]


def fault_matrix(minutes: float = 45.0, seed: int = 1,
                 method: str = "a3c",
                 levels: tuple[str, ...] | None = None) -> list[dict]:
    """Run the matrix; returns one result row per fault level.

    ``levels`` restricts the run to a subset of the matrix (the
    fault-free ``"none"`` row is the comparison baseline and should be
    included); ``None`` runs every level.
    """
    space = combo_small()
    rows = []
    for name, faults in fault_levels(minutes, seed):
        if levels is not None and name not in levels:
            continue
        reward_model = SurrogateReward(
            space, COMBO_PAPER_SHAPES, combo_head(),
            TrainingCostModel.combo_paper(),
            epochs=1, train_fraction=0.1, timeout=600.0,
            log_params_opt=6.5, seed=7)
        cfg = SearchConfig(
            method=method, allocation=_ALLOCATION,
            wall_time=minutes * 60.0, seed=seed,
            faults=faults,
            batch_deadline=(None if faults is None else minutes * 60.0 / 4))
        search = NasSearch(space, reward_model, cfg)
        result = search.run()
        rows.append({
            "level": name,
            "evaluations": result.num_evaluations,
            "best_reward": (result.best().reward
                            if result.records else float("-inf")),
            "failed_evals": result.num_failed_evals,
            "failed_agents": len(result.failed_agents),
            "node_failures": search.cluster.num_failures,
            "job_restarts": search.service.num_restarts,
            "mean_utilization": search.cluster.mean_utilization(
                result.end_time),
            "end_time": result.end_time,
        })
    return rows


def check_rows(rows: list[dict], tolerance: float = 0.05) -> list[str]:
    """Robustness invariants over a fault-matrix result; returns the
    list of violations (empty = pass)."""
    problems = []
    baseline = rows[0]
    for row in rows:
        if row["failed_agents"]:
            problems.append(
                f"{row['level']}: {row['failed_agents']} agent(s) lost")
        if row["evaluations"] == 0:
            problems.append(f"{row['level']}: produced no evaluations")
    for row in rows[1:]:
        drop = baseline["best_reward"] - row["best_reward"]
        if drop > tolerance * abs(baseline["best_reward"]):
            problems.append(
                f"{row['level']}: best reward degraded by {drop:.4f} "
                f"(> {tolerance:.0%} of fault-free "
                f"{baseline['best_reward']:.4f})")
    return problems


def numeric_matrix(minutes: float = 40.0, seed: int = 1,
                   methods: tuple[str, ...] = ("a3c", "a2c"),
                   max_restarts: int = 3) -> list[dict]:
    """Numerical-chaos profile: one row per PPO method.

    Each run injects NaN gradients, exploding updates, and corrupt
    exchange deltas while the health layer runs in ``recover`` mode —
    rollback first, resurrection when the rollback budget is spent.
    """
    space = combo_small()
    faults = FaultConfig(nan_grad_prob=0.05, exploding_loss_prob=0.02,
                         corrupt_delta_prob=0.05, seed=seed + 2)
    rows = []
    for method in methods:
        reward_model = SurrogateReward(
            space, COMBO_PAPER_SHAPES, combo_head(),
            TrainingCostModel.combo_paper(),
            epochs=1, train_fraction=0.1, timeout=600.0,
            log_params_opt=6.5, seed=7)
        cfg = SearchConfig(
            method=method, allocation=_ALLOCATION,
            wall_time=minutes * 60.0, seed=seed,
            faults=faults, guard=GuardConfig(mode="recover"),
            max_restarts=max_restarts)
        search = NasSearch(space, reward_model, cfg)
        result = search.run()
        best = (result.best().reward if result.records else float("nan"))
        rows.append({
            "level": f"numeric/{method}",
            "evaluations": result.num_evaluations,
            "best_reward": best,
            "rollbacks": result.num_rollbacks,
            "restarts": result.num_restarts,
            "failed_agents": len(result.failed_agents),
            "numeric_faults": (search.injector.num_numeric_faults
                               if search.injector else 0),
            "rejected_deltas": (search.ps.num_rejected_deltas
                                if search.ps is not None
                                and hasattr(search.ps,
                                            "num_rejected_deltas") else 0),
            "end_time": result.end_time,
        })
    return rows


def check_numeric_rows(rows: list[dict]) -> list[str]:
    """Health-layer invariants over the numeric profile; returns the
    list of violations (empty = pass)."""
    problems = []
    for row in rows:
        level = row["level"]
        if row["evaluations"] == 0:
            problems.append(f"{level}: produced no evaluations")
        best = row["best_reward"]
        if not (best == best and abs(best) != float("inf")):
            problems.append(f"{level}: best reward not finite ({best!r})")
        if row["numeric_faults"] == 0:
            problems.append(f"{level}: no numeric faults fired — the "
                            f"profile tested nothing")
        if row["rollbacks"] == 0:
            problems.append(f"{level}: guards never rolled a policy back")
        if row["restarts"] == 0:
            problems.append(f"{level}: no agent was resurrected")
        if row["failed_agents"]:
            problems.append(
                f"{level}: {row['failed_agents']} agent(s) permanently "
                f"lost below the restart cap")
    return problems


def proc_matrix(seed: int = 1, iterations: int = 3,
                kill_interval: float = 0.4, max_kills: int = 4,
                methods: tuple[str, ...] = ("a3c",)) -> list[dict]:
    """Real-fault chaos over the supervised process backend.

    Each row runs a small search with ``backend="process"`` against a
    :class:`ChaosEvalModel` whose architectures really crash
    (``os._exit``) and really hang, while a killer thread SIGKILLs live
    worker processes mid-evaluation.  The supervision layer must absorb
    all of it: crashed/hung workers are respawned, their jobs retried,
    poison architectures quarantined to the failure reward, and the
    search completes with supervision counters surfaced in
    ``SearchResult.worker_stats`` and WORKER_* events in the stream.

    Determinism note: rewards are pure functions of the architecture,
    so retries — however the killer interleaves with them — return the
    same values and the sampled trajectory stays seed-deterministic.
    """
    from ..evaluator.process import ProcConfig, ProcessEvaluator
    from ..events import (QUARANTINE, WORKER_CRASH, WORKER_RESPAWN,
                          WORKER_SPAWN, RecordingSink)

    space = combo_small()
    rows = []
    for method in methods:
        inner = SurrogateReward(
            space, COMBO_PAPER_SHAPES, combo_head(),
            TrainingCostModel.combo_paper(),
            epochs=1, train_fraction=0.1, timeout=600.0,
            log_params_opt=6.5, seed=7)
        model = ChaosEvalModel(inner, crash_frac=0.10, hang_frac=0.08,
                               hang_seconds=30.0, eval_seconds=0.05,
                               seed=seed)
        # generous respawn budget: quarantine (2 distinct kills) must
        # always fire before the pool can exhaust, because the inline
        # fallback must never execute a not-yet-quarantined poison job
        # in the parent process
        cfg = SearchConfig(
            method=method, allocation=NodeAllocation(10, 2, 3),
            wall_time=3600.0, seed=seed, backend="process",
            max_iterations=iterations,
            proc=ProcConfig(workers=2, job_deadline=1.0,
                            heartbeat_interval=0.1,
                            retry_backoff=0.02, max_respawns=50))
        sink = RecordingSink()
        search = NasSearch(space, model, cfg, event_sink=sink)

        stop = threading.Event()
        kills = [0]

        def killer(search=search, stop=stop, kills=kills):
            while not stop.is_set() and kills[0] < max_kills:
                stop.wait(kill_interval)
                pids = [pid for ev in search.evaluators
                        if isinstance(ev, ProcessEvaluator)
                        for pid in ev.worker_pids()]
                if not pids:
                    continue
                try:
                    os.kill(pids[kills[0] % len(pids)], signal.SIGKILL)
                    kills[0] += 1
                except OSError:
                    pass    # worker exited between listing and kill

        thread = threading.Thread(target=killer, daemon=True)
        thread.start()
        try:
            result = search.run()
        finally:
            stop.set()
            thread.join(5.0)
        stats = result.worker_stats
        kinds = set(sink.kinds())
        rows.append({
            "level": f"proc/{method}",
            "evaluations": result.num_evaluations,
            "best_reward": (result.best().reward
                            if result.records else float("-inf")),
            "failed_evals": result.num_failed_evals,
            "failed_agents": len(result.failed_agents),
            "external_kills": kills[0],
            "worker_crashes": stats.get("worker_crashes", 0),
            "worker_timeouts": stats.get("worker_timeouts", 0),
            "respawns": stats.get("respawns", 0),
            "quarantined": stats.get("quarantined", 0),
            "inline_evals": stats.get("inline_evals", 0),
            "events_ok": ({WORKER_SPAWN, WORKER_CRASH, WORKER_RESPAWN,
                           QUARANTINE} <= kinds),
        })
    return rows


def check_proc_rows(rows: list[dict]) -> list[str]:
    """Supervision invariants over the proc profile; returns the list
    of violations (empty = pass)."""
    problems = []
    for row in rows:
        level = row["level"]
        if row["evaluations"] == 0:
            problems.append(f"{level}: produced no evaluations")
        if row["failed_agents"]:
            problems.append(
                f"{level}: {row['failed_agents']} agent(s) lost")
        if row["worker_crashes"] + row["worker_timeouts"] == 0:
            problems.append(f"{level}: no worker was ever killed — the "
                            f"profile tested nothing")
        if row["respawns"] == 0:
            problems.append(f"{level}: no worker was respawned")
        if row["quarantined"] == 0:
            problems.append(f"{level}: no architecture was quarantined")
        if not row["events_ok"]:
            problems.append(f"{level}: WORKER_*/QUARANTINE events missing "
                            f"from the stream")
    return problems


# ----------------------------------------------------------------------
# crash-point fuzzing (write-ahead journal durability)
# ----------------------------------------------------------------------
def crashpoint_child(journal_dir, method: str = "a3c",
                     backend: str = "serial", seed: int = 3,
                     iterations: int = 4, throttle: float = 0.0,
                     count: bool = False):
    """One durable search over ``journal_dir`` — first launch and every
    relaunch alike (it goes through
    :func:`~repro.search.journal.resume_durable`).

    This is both the subprocess entry the fuzzer SIGKILLs (``throttle``
    stalls each evaluation so the parent can aim between journal
    records; the stall never touches rewards or modeled durations, so
    fingerprints are unaffected) and the in-parent resume path
    (``count=True`` wraps the reward model in
    :class:`CountingRewardModel`).  Returns ``(result, search,
    counter)``.
    """
    space = combo_small()
    model: RewardModel = SurrogateReward(
        space, COMBO_PAPER_SHAPES, combo_head(),
        TrainingCostModel.combo_paper(),
        epochs=1, train_fraction=0.1, timeout=600.0,
        log_params_opt=6.5, seed=7)
    if throttle > 0:
        model = ChaosEvalModel(model, eval_seconds=throttle, seed=seed)
    counter = None
    if count:
        model = counter = CountingRewardModel(model)
    proc = None
    if backend == "process":
        from ..evaluator.process import ProcConfig
        proc = ProcConfig(workers=2)
    cfg = SearchConfig(
        method=method, allocation=NodeAllocation(10, 2, 3),
        wall_time=3600.0, seed=seed, backend=backend,
        max_iterations=iterations, proc=proc,
        journal_dir=os.fspath(journal_dir), checkpoint_every_records=6)
    search = resume_durable(space, model, cfg)
    result = search.run()
    return result, search, counter


def _journal_real_evals(journal_dir) -> int:
    """Real executions recorded in the journal: ``eval-done`` records
    that are neither cache hits (those emit ``cache-hit``) nor replay
    re-emissions (``replayed=True``)."""
    path = Path(journal_dir) / JOURNAL_NAME
    if not path.exists():
        return 0
    return sum(1 for e in read_journal(path)
               if e.kind == EVAL_DONE and "arch" in e.payload
               and not e.payload.get("replayed"))


def _spawn_and_kill_at(journal_dir, k: int, method: str, backend: str,
                       seed: int, iterations: int, throttle: float,
                       timeout: float = 180.0) -> bool:
    """Launch a durable search subprocess and SIGKILL its whole process
    group once the journal holds >= ``k`` records.

    ``start_new_session`` + ``killpg`` take down the search head *and*
    any spawn-context pool workers in one shot — the moral equivalent of
    losing the node, and the only way a process-backend child dies
    without leaving orphans blocked on their task queue.  Returns True
    when the kill landed, False when the child finished first (a valid
    fuzz outcome near the end of the journal: the resume is asserted
    either way).
    """
    src_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    code = ("from repro.search.chaos import crashpoint_child; "
            f"crashpoint_child({os.fspath(journal_dir)!r}, {method!r}, "
            f"{backend!r}, {seed}, {iterations}, {throttle})")
    child = subprocess.Popen([sys.executable, "-c", code], env=env,
                             stdout=subprocess.DEVNULL,
                             stderr=subprocess.DEVNULL,
                             start_new_session=True)
    journal_path = Path(journal_dir) / JOURNAL_NAME
    deadline = time.monotonic() + timeout
    killed = False
    try:
        while time.monotonic() < deadline:
            if child.poll() is not None:
                return False        # finished before record k
            try:
                records = journal_path.read_bytes().count(b"\n")
            except OSError:
                records = 0
            if records >= k:
                killed = True
                break
            time.sleep(0.01)
        try:
            os.killpg(child.pid, signal.SIGKILL)
        except OSError:
            pass                    # group already gone
        return killed
    finally:
        child.wait()


def crashpoint_matrix(seed: int = 3, iterations: int = 4, points: int = 3,
                      methods: tuple[str, ...] = ("a3c", "a2c", "rdm"),
                      backends: tuple[str, ...] = ("serial", "thread",
                                                   "process"),
                      throttle: float = 0.05) -> list[dict]:
    """SIGKILL-anywhere fuzzing of the write-ahead journal: one row per
    (method, backend) cell.

    Per cell: run the search uninterrupted once (the baseline journal
    gives the total record count, the real-execution count, and the
    reference fingerprint), pick ``points`` stratified kill indices over
    the record range, and for each index run a fresh subprocess, SIGKILL
    its process group at that journal record, resume in-process, and
    check the two durability promises — the resumed fingerprint is
    bit-identical to the uninterrupted run's, and the total number of
    real reward-model executions across crashed run + resume equals the
    uninterrupted run's (zero re-evaluation).
    """
    rows = []
    for method in methods:
        for backend in backends:
            base_dir = tempfile.mkdtemp(prefix="crashpoint-base-")
            try:
                base_result, _search, base_counter = crashpoint_child(
                    base_dir, method, backend, seed, iterations, count=True)
                base_fp = base_result.fingerprint()
                base_real = _journal_real_evals(base_dir)
                journal_path = Path(base_dir) / JOURNAL_NAME
                total = journal_path.read_bytes().count(b"\n")
            finally:
                shutil.rmtree(base_dir, ignore_errors=True)
            kill_points = sorted({max(1, total * i // (points + 1))
                                  for i in range(1, points + 1)})
            row = {"level": f"crashpoint/{method}/{backend}",
                   "journal_records": total, "baseline_evals": base_real,
                   "kill_points": kill_points, "kills_landed": 0,
                   "replay_loaded": 0, "fingerprint_mismatches": 0,
                   "reevaluations": 0, "replay_leftover": 0,
                   "direct_reexec": 0}
            for k in kill_points:
                crash_dir = tempfile.mkdtemp(prefix="crashpoint-")
                try:
                    landed = _spawn_and_kill_at(
                        crash_dir, k, method, backend, seed, iterations,
                        throttle)
                    row["kills_landed"] += int(landed)
                    real_at_kill = _journal_real_evals(crash_dir)
                    result, search, counter = crashpoint_child(
                        crash_dir, method, backend, seed, iterations,
                        count=True)
                    row["replay_loaded"] += search.num_replay_loaded
                    if result.fingerprint() != base_fp:
                        row["fingerprint_mismatches"] += 1
                    # zero re-evaluation, from the journal itself: real
                    # executions across dead run + resume must equal the
                    # uninterrupted run's (works for every backend — the
                    # broker journals eval-done in the search head)
                    row["reevaluations"] += max(
                        0, _journal_real_evals(crash_dir) - base_real)
                    # every armed replay entry must have been consumed
                    row["replay_leftover"] += sum(
                        ev.replay_pending() for ev in search.evaluators)
                    if counter is not None and backend != "process":
                        # in-process backends: the resumed run's direct
                        # call count must be exactly the journal deficit
                        row["direct_reexec"] += max(
                            0, counter.calls - (base_real - real_at_kill))
                finally:
                    shutil.rmtree(crash_dir, ignore_errors=True)
            rows.append(row)
    return rows


def check_crashpoint_rows(rows: list[dict]) -> list[str]:
    """Durability invariants over the crash-point profile; returns the
    list of violations (empty = pass)."""
    problems = []
    for row in rows:
        level = row["level"]
        if row["fingerprint_mismatches"]:
            problems.append(
                f"{level}: {row['fingerprint_mismatches']} resumed run(s) "
                f"diverged from the uninterrupted fingerprint")
        if row["reevaluations"]:
            problems.append(
                f"{level}: {row['reevaluations']} journaled evaluation(s) "
                f"were re-executed after resume")
        if row["direct_reexec"]:
            problems.append(
                f"{level}: reward model re-invoked "
                f"{row['direct_reexec']} time(s) beyond the journal "
                f"deficit")
        if row["replay_leftover"]:
            problems.append(
                f"{level}: {row['replay_leftover']} armed replay "
                f"entr(y/ies) never consumed")
        if row["kills_landed"] == 0:
            problems.append(
                f"{level}: no SIGKILL landed — every child finished "
                f"first, the profile tested nothing")
    if rows and not any(row["replay_loaded"] for row in rows):
        problems.append("crashpoint: no run ever loaded a replay entry — "
                        "every kill landed on a checkpoint boundary")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="fault-matrix smoke of the fault-tolerant pipeline")
    parser.add_argument("--minutes", type=float, default=45.0,
                        help="virtual wall time per run (default 45)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--method", default="a3c",
                        choices=tuple(sorted(SEARCH_METHODS)))
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed best-reward degradation vs "
                             "fault-free, as a fraction (default 0.05)")
    parser.add_argument("--profile", default="faults",
                        choices=("faults", "numeric", "proc",
                                 "crashpoint", "all"),
                        help="faults = infrastructure fault matrix; "
                             "numeric = numerical health-layer chaos; "
                             "proc = real-process supervision chaos "
                             "(SIGKILLed workers, crashing/hanging "
                             "evals); crashpoint = SIGKILL the whole "
                             "search at stratified journal records and "
                             "prove bit-identical zero-re-eval resume; "
                             "all = every profile (default faults)")
    parser.add_argument("--points", type=int, default=3,
                        help="kill points per crashpoint cell (default 3)")
    parser.add_argument("--methods", default="a3c,a2c,rdm",
                        help="comma-separated methods for the crashpoint "
                             "profile (default a3c,a2c,rdm)")
    parser.add_argument("--backends", default="serial,thread,process",
                        help="comma-separated backends for the "
                             "crashpoint profile "
                             "(default serial,thread,process)")
    args = parser.parse_args(argv)

    problems: list[str] = []
    if args.profile in ("faults", "all"):
        rows = fault_matrix(minutes=args.minutes, seed=args.seed,
                            method=args.method)
        header = (f"{'level':12s} {'evals':>6s} {'best':>8s} "
                  f"{'failed':>7s} {'lost':>5s} {'nodefail':>8s} "
                  f"{'restarts':>8s} {'util':>6s}")
        print(header)
        for row in rows:
            print(f"{row['level']:12s} {row['evaluations']:6d} "
                  f"{row['best_reward']:8.4f} {row['failed_evals']:7d} "
                  f"{row['failed_agents']:5d} {row['node_failures']:8d} "
                  f"{row['job_restarts']:8d} "
                  f"{row['mean_utilization']:6.3f}")
        problems += check_rows(rows, tolerance=args.tolerance)

    if args.profile in ("numeric", "all"):
        rows = numeric_matrix(minutes=args.minutes, seed=args.seed)
        print(f"{'level':12s} {'evals':>6s} {'best':>8s} {'faults':>7s} "
              f"{'rollbk':>6s} {'resur':>6s} {'reject':>6s} {'lost':>5s}")
        for row in rows:
            print(f"{row['level']:12s} {row['evaluations']:6d} "
                  f"{row['best_reward']:8.4f} {row['numeric_faults']:7d} "
                  f"{row['rollbacks']:6d} {row['restarts']:6d} "
                  f"{row['rejected_deltas']:6d} {row['failed_agents']:5d}")
        problems += check_numeric_rows(rows)

    if args.profile in ("proc", "all"):
        rows = proc_matrix(seed=args.seed)
        print(f"{'level':12s} {'evals':>6s} {'best':>8s} {'kills':>6s} "
              f"{'crash':>6s} {'tmout':>6s} {'respwn':>6s} {'quar':>5s} "
              f"{'inline':>6s}")
        for row in rows:
            print(f"{row['level']:12s} {row['evaluations']:6d} "
                  f"{row['best_reward']:8.4f} {row['external_kills']:6d} "
                  f"{row['worker_crashes']:6d} {row['worker_timeouts']:6d} "
                  f"{row['respawns']:6d} {row['quarantined']:5d} "
                  f"{row['inline_evals']:6d}")
        problems += check_proc_rows(rows)

    if args.profile in ("crashpoint", "all"):
        rows = crashpoint_matrix(
            seed=args.seed + 2, points=args.points,
            methods=tuple(args.methods.split(",")),
            backends=tuple(args.backends.split(",")))
        print(f"{'level':24s} {'recs':>5s} {'evals':>6s} {'kills':>6s} "
              f"{'replay':>6s} {'fpmis':>6s} {'reeval':>6s} {'left':>5s}")
        for row in rows:
            print(f"{row['level']:24s} {row['journal_records']:5d} "
                  f"{row['baseline_evals']:6d} {row['kills_landed']:6d} "
                  f"{row['replay_loaded']:6d} "
                  f"{row['fingerprint_mismatches']:6d} "
                  f"{row['reevaluations']:6d} {row['replay_leftover']:5d}")
        problems += check_crashpoint_rows(rows)

    for problem in problems:
        print(f"chaos: FAIL — {problem}")
    if not problems:
        print("chaos: all profiles within tolerance")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
