"""Chaos harness: fault-matrix smoke of the fault-tolerant pipeline.

``make chaos`` / ``repro-chaos`` runs the same seeded NAS search under a
matrix of fault levels — none, light, moderate, heavy — and checks the
robustness invariants the fault layer promises:

* every run **completes** (no agent lost to a deadlocked barrier; the
  batch deadline and Balsam retry policy always release it);
* failures are **accounted for**, not silently dropped (failed
  evaluations surface as the paper's −1 failure reward);
* the search **degrades gracefully**: the best discovered reward stays
  within a small tolerance of the fault-free run's, because Balsam
  restarts failed tasks and the agents keep searching (§4's "tracks job
  states and restarts failed tasks").

The fault-free row doubles as a canary: it must behave bit-identically
to a search with no fault layer at all.

A second profile (``--profile numeric``) exercises the *numerical*
health layer (:mod:`repro.health`): NaN-poisoned gradients, exploding
update directions, and corrupt exchange deltas are injected into a3c and
a2c searches running under guard-mode ``recover``, and the harness
checks that the search heals — at least one policy rollback and one
agent resurrection occur, no agent is permanently lost below the restart
cap, and the best discovered reward stays finite.

Run via ``make chaos`` or::

    PYTHONPATH=src python -m repro.search.chaos --minutes 45
    PYTHONPATH=src python -m repro.search.chaos --profile numeric
"""

from __future__ import annotations

import argparse

from ..health import GuardConfig
from ..hpc import NodeAllocation, TrainingCostModel
from ..hpc.faults import FaultConfig
from ..nas.spaces import combo_small
from ..problems.combo import COMBO_PAPER_SHAPES, combo_head
from ..rewards import SurrogateReward
from .base import SearchConfig
from .runner import NasSearch

__all__ = ["fault_levels", "fault_matrix", "check_rows",
           "numeric_matrix", "check_numeric_rows", "main"]

#: default chaos allocation: small enough to run in seconds, large
#: enough that node failures hit busy pilots
_ALLOCATION = NodeAllocation(32, 4, 3)


def fault_levels(minutes: float, seed: int) -> list[tuple[str,
                                                          FaultConfig | None]]:
    """The fault matrix: (name, config) rows, fault-free first.

    Rates scale with the run length so every faulted level actually
    fires: "light" sees a few node failures, "heavy" adds frequent
    failures, job crashes, stragglers, and a mid-run service outage.
    """
    span = minutes * 60.0
    return [
        ("none", None),
        ("light", FaultConfig(node_mtbf=4.0 * span,
                              node_repair_time=span / 10.0,
                              job_crash_prob=0.01, seed=seed)),
        ("moderate", FaultConfig(node_mtbf=2.0 * span,
                                 node_repair_time=span / 10.0,
                                 job_crash_prob=0.02,
                                 straggler_prob=0.05, seed=seed)),
        ("heavy", FaultConfig(node_mtbf=span,
                              node_repair_time=span / 8.0,
                              job_crash_prob=0.05,
                              straggler_prob=0.10,
                              outages=((0.45 * span, 0.55 * span),),
                              seed=seed)),
    ]


def fault_matrix(minutes: float = 45.0, seed: int = 1,
                 method: str = "a3c",
                 levels: tuple[str, ...] | None = None) -> list[dict]:
    """Run the matrix; returns one result row per fault level.

    ``levels`` restricts the run to a subset of the matrix (the
    fault-free ``"none"`` row is the comparison baseline and should be
    included); ``None`` runs every level.
    """
    space = combo_small()
    rows = []
    for name, faults in fault_levels(minutes, seed):
        if levels is not None and name not in levels:
            continue
        reward_model = SurrogateReward(
            space, COMBO_PAPER_SHAPES, combo_head(),
            TrainingCostModel.combo_paper(),
            epochs=1, train_fraction=0.1, timeout=600.0,
            log_params_opt=6.5, seed=7)
        cfg = SearchConfig(
            method=method, allocation=_ALLOCATION,
            wall_time=minutes * 60.0, seed=seed,
            faults=faults,
            batch_deadline=(None if faults is None else minutes * 60.0 / 4))
        search = NasSearch(space, reward_model, cfg)
        result = search.run()
        rows.append({
            "level": name,
            "evaluations": result.num_evaluations,
            "best_reward": (result.best().reward
                            if result.records else float("-inf")),
            "failed_evals": result.num_failed_evals,
            "failed_agents": len(result.failed_agents),
            "node_failures": search.cluster.num_failures,
            "job_restarts": search.service.num_restarts,
            "mean_utilization": search.cluster.mean_utilization(
                result.end_time),
            "end_time": result.end_time,
        })
    return rows


def check_rows(rows: list[dict], tolerance: float = 0.05) -> list[str]:
    """Robustness invariants over a fault-matrix result; returns the
    list of violations (empty = pass)."""
    problems = []
    baseline = rows[0]
    for row in rows:
        if row["failed_agents"]:
            problems.append(
                f"{row['level']}: {row['failed_agents']} agent(s) lost")
        if row["evaluations"] == 0:
            problems.append(f"{row['level']}: produced no evaluations")
    for row in rows[1:]:
        drop = baseline["best_reward"] - row["best_reward"]
        if drop > tolerance * abs(baseline["best_reward"]):
            problems.append(
                f"{row['level']}: best reward degraded by {drop:.4f} "
                f"(> {tolerance:.0%} of fault-free "
                f"{baseline['best_reward']:.4f})")
    return problems


def numeric_matrix(minutes: float = 40.0, seed: int = 1,
                   methods: tuple[str, ...] = ("a3c", "a2c"),
                   max_restarts: int = 3) -> list[dict]:
    """Numerical-chaos profile: one row per PPO method.

    Each run injects NaN gradients, exploding updates, and corrupt
    exchange deltas while the health layer runs in ``recover`` mode —
    rollback first, resurrection when the rollback budget is spent.
    """
    space = combo_small()
    faults = FaultConfig(nan_grad_prob=0.05, exploding_loss_prob=0.02,
                         corrupt_delta_prob=0.05, seed=seed + 2)
    rows = []
    for method in methods:
        reward_model = SurrogateReward(
            space, COMBO_PAPER_SHAPES, combo_head(),
            TrainingCostModel.combo_paper(),
            epochs=1, train_fraction=0.1, timeout=600.0,
            log_params_opt=6.5, seed=7)
        cfg = SearchConfig(
            method=method, allocation=_ALLOCATION,
            wall_time=minutes * 60.0, seed=seed,
            faults=faults, guard=GuardConfig(mode="recover"),
            max_restarts=max_restarts)
        search = NasSearch(space, reward_model, cfg)
        result = search.run()
        best = (result.best().reward if result.records else float("nan"))
        rows.append({
            "level": f"numeric/{method}",
            "evaluations": result.num_evaluations,
            "best_reward": best,
            "rollbacks": result.num_rollbacks,
            "restarts": result.num_restarts,
            "failed_agents": len(result.failed_agents),
            "numeric_faults": (search.injector.num_numeric_faults
                               if search.injector else 0),
            "rejected_deltas": (search.ps.num_rejected_deltas
                                if search.ps is not None
                                and hasattr(search.ps,
                                            "num_rejected_deltas") else 0),
            "end_time": result.end_time,
        })
    return rows


def check_numeric_rows(rows: list[dict]) -> list[str]:
    """Health-layer invariants over the numeric profile; returns the
    list of violations (empty = pass)."""
    problems = []
    for row in rows:
        level = row["level"]
        if row["evaluations"] == 0:
            problems.append(f"{level}: produced no evaluations")
        best = row["best_reward"]
        if not (best == best and abs(best) != float("inf")):
            problems.append(f"{level}: best reward not finite ({best!r})")
        if row["numeric_faults"] == 0:
            problems.append(f"{level}: no numeric faults fired — the "
                            f"profile tested nothing")
        if row["rollbacks"] == 0:
            problems.append(f"{level}: guards never rolled a policy back")
        if row["restarts"] == 0:
            problems.append(f"{level}: no agent was resurrected")
        if row["failed_agents"]:
            problems.append(
                f"{level}: {row['failed_agents']} agent(s) permanently "
                f"lost below the restart cap")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="fault-matrix smoke of the fault-tolerant pipeline")
    parser.add_argument("--minutes", type=float, default=45.0,
                        help="virtual wall time per run (default 45)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--method", default="a3c",
                        choices=("a3c", "a2c", "rdm"))
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed best-reward degradation vs "
                             "fault-free, as a fraction (default 0.05)")
    parser.add_argument("--profile", default="faults",
                        choices=("faults", "numeric", "all"),
                        help="faults = infrastructure fault matrix; "
                             "numeric = numerical health-layer chaos; "
                             "all = both (default faults)")
    args = parser.parse_args(argv)

    problems: list[str] = []
    if args.profile in ("faults", "all"):
        rows = fault_matrix(minutes=args.minutes, seed=args.seed,
                            method=args.method)
        header = (f"{'level':12s} {'evals':>6s} {'best':>8s} "
                  f"{'failed':>7s} {'lost':>5s} {'nodefail':>8s} "
                  f"{'restarts':>8s} {'util':>6s}")
        print(header)
        for row in rows:
            print(f"{row['level']:12s} {row['evaluations']:6d} "
                  f"{row['best_reward']:8.4f} {row['failed_evals']:7d} "
                  f"{row['failed_agents']:5d} {row['node_failures']:8d} "
                  f"{row['job_restarts']:8d} "
                  f"{row['mean_utilization']:6.3f}")
        problems += check_rows(rows, tolerance=args.tolerance)

    if args.profile in ("numeric", "all"):
        rows = numeric_matrix(minutes=args.minutes, seed=args.seed)
        print(f"{'level':12s} {'evals':>6s} {'best':>8s} {'faults':>7s} "
              f"{'rollbk':>6s} {'resur':>6s} {'reject':>6s} {'lost':>5s}")
        for row in rows:
            print(f"{row['level']:12s} {row['evaluations']:6d} "
                  f"{row['best_reward']:8.4f} {row['numeric_faults']:7d} "
                  f"{row['rollbacks']:6d} {row['restarts']:6d} "
                  f"{row['rejected_deltas']:6d} {row['failed_agents']:5d}")
        problems += check_numeric_rows(rows)

    for problem in problems:
        print(f"chaos: FAIL — {problem}")
    if not problems:
        print("chaos: all profiles within tolerance")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
