"""Parallel NAS search strategies: A3C, A2C and random search (RDM)."""

from ..hpc.cluster import NodeAllocation
from ..hpc.faults import FaultConfig
from .base import RewardRecord, SearchConfig, SearchResult
from .checkpoint import AgentCheckpoint, SearchCheckpoint
from .evolution import EvolutionConfig, EvolutionSearch, run_evolution
from .exchange import (EXCHANGE_STRATEGIES, A2CExchange, A3CExchange,
                       ExchangeStrategy, RandomExchange, build_exchange)
from .hooks import (BoundaryHook, HealthHook, HookStack, LifecycleHooks,
                    NumericFaultHook, RecordCheckpointHook)
from .journal import SearchJournal, resume_durable
from .loop import AgentLoop
from .runner import NasSearch, resume_search, run_search

__all__ = ['A2CExchange', 'A3CExchange', 'AgentCheckpoint', 'AgentLoop',
           'BoundaryHook', 'EXCHANGE_STRATEGIES', 'EvolutionConfig',
           'EvolutionSearch', 'ExchangeStrategy', 'FaultConfig',
           'HealthHook', 'HookStack', 'LifecycleHooks', 'NasSearch',
           'NodeAllocation', 'NumericFaultHook', 'RandomExchange',
           'RecordCheckpointHook', 'RewardRecord', 'SearchCheckpoint',
           'SearchConfig', 'SearchJournal', 'SearchResult',
           'build_exchange', 'resume_durable', 'resume_search',
           'run_evolution', 'run_search']


def a3c_config(**kwargs) -> SearchConfig:
    """Asynchronous advantage actor-critic configuration."""
    return SearchConfig(method="a3c", **kwargs)


def a2c_config(**kwargs) -> SearchConfig:
    """Synchronous advantage actor-critic configuration."""
    return SearchConfig(method="a2c", **kwargs)


def rdm_config(**kwargs) -> SearchConfig:
    """Random-search baseline configuration."""
    return SearchConfig(method="rdm", **kwargs)
