"""Parallel NAS search strategies: A3C, A2C and random search (RDM)."""

from ..hpc.cluster import NodeAllocation
from .base import RewardRecord, SearchConfig, SearchResult
from .evolution import EvolutionConfig, EvolutionSearch, run_evolution
from .runner import NasSearch, run_search

__all__ = ['EvolutionConfig', 'EvolutionSearch', 'NasSearch', 'NodeAllocation', 'RewardRecord', 'SearchConfig', 'SearchResult', 'run_evolution', 'run_search']


def a3c_config(**kwargs) -> SearchConfig:
    """Asynchronous advantage actor-critic configuration."""
    return SearchConfig(method="a3c", **kwargs)


def a2c_config(**kwargs) -> SearchConfig:
    """Synchronous advantage actor-critic configuration."""
    return SearchConfig(method="a2c", **kwargs)


def rdm_config(**kwargs) -> SearchConfig:
    """Random-search baseline configuration."""
    return SearchConfig(method="rdm", **kwargs)
