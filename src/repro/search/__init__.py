"""Parallel NAS search: RL (A3C/A2C), random, AMBS, and evolution."""

from ..hpc.cluster import NodeAllocation
from ..hpc.faults import FaultConfig
from .ambs import AmbsProposer
from .base import RewardRecord, SearchConfig, SearchResult
from .checkpoint import AgentCheckpoint, SearchCheckpoint
from .evolution import (EvolutionConfig, EvolutionProposer, EvolutionSearch,
                        run_evolution)
from .exchange import (EXCHANGE_STRATEGIES, A2CExchange, A3CExchange,
                       ExchangeStrategy, RandomExchange)
from .hooks import (BoundaryHook, HealthHook, HookStack, LifecycleHooks,
                    NumericFaultHook, RecordCheckpointHook)
from .journal import SearchJournal, resume_durable
from .loop import AgentLoop
from .methods import (SEARCH_METHODS, SearchMethod, build_exchange,
                      build_proposer)
from .proposer import (HistoryProposer, PolicyProposer, Proposer,
                       RandomProposer)
from .runner import NasSearch, resume_search, run_search

__all__ = ['A2CExchange', 'A3CExchange', 'AgentCheckpoint', 'AgentLoop',
           'AmbsProposer', 'BoundaryHook', 'EXCHANGE_STRATEGIES',
           'EvolutionConfig', 'EvolutionProposer', 'EvolutionSearch',
           'ExchangeStrategy', 'FaultConfig', 'HealthHook',
           'HistoryProposer', 'HookStack', 'LifecycleHooks', 'NasSearch',
           'NodeAllocation', 'NumericFaultHook', 'PolicyProposer',
           'Proposer', 'RandomExchange', 'RandomProposer',
           'RecordCheckpointHook', 'RewardRecord', 'SEARCH_METHODS',
           'SearchCheckpoint', 'SearchConfig', 'SearchJournal',
           'SearchMethod', 'SearchResult', 'build_exchange',
           'build_proposer', 'resume_durable', 'resume_search',
           'run_evolution', 'run_search']


def a3c_config(**kwargs) -> SearchConfig:
    """Asynchronous advantage actor-critic configuration."""
    return SearchConfig(method="a3c", **kwargs)


def a2c_config(**kwargs) -> SearchConfig:
    """Synchronous advantage actor-critic configuration."""
    return SearchConfig(method="a2c", **kwargs)


def rdm_config(**kwargs) -> SearchConfig:
    """Random-search baseline configuration."""
    return SearchConfig(method="rdm", **kwargs)


def ambs_config(**kwargs) -> SearchConfig:
    """Asynchronous model-based search configuration."""
    return SearchConfig(method="ambs", **kwargs)


def evolution_config(**kwargs) -> SearchConfig:
    """Aging-evolution configuration."""
    return SearchConfig(method="evolution", **kwargs)
