"""Lifecycle hooks: how cross-cutting layers attach to the agent loop.

The agent loop (:mod:`repro.search.loop`) is deliberately ignorant of
checkpointing, chaos, and health monitoring.  Each of those concerns is
one :class:`LifecycleHooks` implementation composed into a
:class:`HookStack` per agent *lifetime* (a resurrection builds a fresh
stack, matching the per-lifetime semantics of rollback budgets and the
restart-keyed numeric fault draw):

* :class:`BoundaryHook` — captures the iteration boundary feeding both
  checkpoint capture and in-run resurrection;
* :class:`NumericFaultHook` — chaos-layer numerical fault injection
  (NaN gradients, exploding losses, in-flight delta corruption);
* :class:`HealthHook` — the :mod:`repro.health` guard/rollback layer.

Hook order in the stack is semantic: faults are injected *before* the
health check so the guards see (and may undo) the corruption, exactly
as the inline pre-refactor code behaved.
"""

from __future__ import annotations

import copy

import numpy as np

from ..events import ROLLBACK, EventSink, emit
from ..health.guards import GuardConfig, NumericalAnomaly
from ..health.recovery import AgentHealth
from ..hpc.faults import FaultInjector
from .checkpoint import AgentBoundary

__all__ = ["LifecycleHooks", "HookStack", "BoundaryHook",
           "RecordCheckpointHook", "NumericFaultHook", "HealthHook"]


class LifecycleHooks:
    """Observer/transformer protocol around one loop iteration.

    Every method defaults to a no-op; ``loop`` is the calling
    :class:`~repro.search.loop.AgentLoop`, whose public attributes
    (``iteration``, ``policy``, ``updater``, ``digest``, ...) are the
    hook's view of agent state.
    """

    def on_iteration_start(self, loop) -> None:
        """Top of the iteration, before sampling."""

    def before_update(self, loop) -> None:
        """A learning step is about to run (pre-update state is live)."""

    def after_update(self, loop, delta: np.ndarray, push_delta: np.ndarray,
                     stats) -> tuple[np.ndarray, np.ndarray]:
        """Transform ``(local delta, delta pushed to the exchange)``.

        Returning the pair unchanged is the identity hook; raising
        crashes the agent (the runner's wrapper takes it from there).
        """
        return delta, push_delta

    def on_iteration_end(self, loop) -> None:
        """Bottom of the iteration, after the digest advanced."""


class HookStack(LifecycleHooks):
    """Runs hooks in order; ``after_update`` threads the delta pair."""

    def __init__(self, hooks) -> None:
        self.hooks = [h for h in hooks if h is not None]

    def on_iteration_start(self, loop) -> None:
        for hook in self.hooks:
            hook.on_iteration_start(loop)

    def before_update(self, loop) -> None:
        for hook in self.hooks:
            hook.before_update(loop)

    def after_update(self, loop, delta, push_delta, stats):
        for hook in self.hooks:
            delta, push_delta = hook.after_update(loop, delta, push_delta,
                                                  stats)
        return delta, push_delta

    def on_iteration_end(self, loop) -> None:
        for hook in self.hooks:
            hook.on_iteration_end(loop)


class BoundaryHook(LifecycleHooks):
    """Captures the agent's iteration boundary into a shared store.

    The boundary is everything a fresh lifetime needs to replay from
    this exact point — RNG state, policy/optimizer vectors, counters,
    digest — and feeds both periodic checkpoints and in-run
    resurrection.  ``capture_lr`` additionally records the (possibly
    backed-off) learning rate when the recover-mode health layer is on.
    """

    def __init__(self, store: dict, capture_lr: bool = False) -> None:
        self.store = store
        self.capture_lr = capture_lr

    def on_iteration_start(self, loop) -> None:
        evaluator, updater = loop.evaluator, loop.updater
        self.store[loop.agent_id] = AgentBoundary(
            time=loop.sim.now, iteration=loop.iteration,
            rng_state=copy.deepcopy(loop.rng.bit_generator.state),
            policy_flat=(None if loop.policy is None
                         else loop.policy.get_flat()),
            opt_state=(None if updater is None
                       else updater.optimizer.export_state()),
            consecutive_cached=loop.consecutive_cached,
            cache_len=(len(evaluator.cache)
                       if evaluator.cache is not None else 0),
            num_records=loop.num_records,
            num_submitted=evaluator.num_submitted,
            num_cache_hits=evaluator.num_cache_hits,
            num_failed=evaluator.num_failed,
            traj_digest=loop.digest,
            lr=(updater.optimizer.lr
                if updater is not None and self.capture_lr else None),
            proposer_seen=loop.proposer.seen())


class RecordCheckpointHook(LifecycleHooks):
    """Gives the runner a record-count checkpoint opportunity at every
    iteration start (``SearchConfig.checkpoint_every_records``).

    Real (host-time) backends never advance the virtual clock, so the
    interval checkpoint timer never fires for them; counting reward
    records is the clock that works on every backend.  The callback only
    *triggers* — the runner defers the actual capture to a zero-delay
    sim process so it observes the same globally consistent
    parked-at-yield-points state the interval clock does (see
    ``NasSearch._maybe_record_checkpoint`` for why capturing inline
    here would tear a sync exchange round in half).
    """

    def __init__(self, callback) -> None:
        self.callback = callback

    def on_iteration_start(self, loop) -> None:
        self.callback()


class NumericFaultHook(LifecycleHooks):
    """Chaos layer: applies this iteration's numerical fault draw.

    The draw is a pure function of ``(seed, agent, iteration,
    attempt)`` — ``attempt`` is the lifetime's restart count, constant
    within a lifetime, so the hook is built per lifetime.
    """

    def __init__(self, injector: FaultInjector, attempt: int) -> None:
        self.injector = injector
        self.attempt = attempt

    def after_update(self, loop, delta, push_delta, stats):
        fault = self.injector.numeric_fault(loop.agent_id, loop.iteration,
                                            self.attempt)
        if fault is None or fault.none:
            return delta, push_delta
        self.injector.num_numeric_faults += 1
        if fault.nan_grad:
            # a corrupted gradient buffer: the local update (already
            # applied by update_delta) and its delta both carry NaN
            poison = np.zeros_like(delta)
            poison[0] = np.nan
            loop.policy.add_flat(poison)
            delta = delta.copy()
            delta[0] = np.nan
            return delta, delta
        if fault.exploding_loss:
            # a diverged local policy: the update direction is real but
            # enormously overscaled
            factor = self.injector.config.exploding_factor
            loop.policy.add_flat(delta * (factor - 1.0))
            delta = delta * factor
            return delta, delta
        # corrupt_delta: corruption in flight — the local policy stays
        # healthy, only the copy pushed to the parameter server is bad
        push_delta = delta.copy()
        push_delta[0] = np.nan
        return delta, push_delta


class HealthHook(LifecycleHooks):
    """Health layer: snapshot before the update, check it after, and
    roll back (or crash, in check mode) on a numerical anomaly.

    One instance per agent lifetime, like the :class:`AgentHealth` it
    wraps — rollback budgets are per-lifetime by design.
    """

    def __init__(self, guard: GuardConfig, base_lr: float,
                 rollbacks: dict, sink: EventSink | None = None) -> None:
        self.guard = guard
        self.health = AgentHealth(guard, base_lr=base_lr)
        self.rollbacks = rollbacks      # shared agent_id -> count store
        self.sink = sink

    def before_update(self, loop) -> None:
        # pre-update state is last-known-good: a poisoned update is
        # undone exactly by restoring it
        self.health.snapshot(loop.iteration, loop.policy.get_flat(),
                             loop.updater.optimizer.export_state())

    def after_update(self, loop, delta, push_delta, stats):
        anomaly = self.health.check_update(loop.policy.get_flat(), delta,
                                           stats)
        if anomaly is None:
            return delta, push_delta
        if not self.guard.recovers:
            # check mode: crash the agent; the runner's wrapper
            # resurrects it (or reports it) from there
            raise NumericalAnomaly(anomaly, f"agent{loop.agent_id}",
                                   "numerical guard tripped (mode=check)")
        # recover mode: roll back to the last good snapshot with LR
        # backoff (escalates to a crash once the lifetime budget is spent)
        self.health.rollback(loop.policy, loop.updater.optimizer)
        self.rollbacks[loop.agent_id] = \
            self.rollbacks.get(loop.agent_id, 0) + 1
        emit(self.sink, ROLLBACK, loop.sim.now, loop.agent_id,
             loop.iteration, anomaly=anomaly)
        # the poisoned local step is undone; contribute nothing to the
        # exchange this iteration
        delta = np.zeros_like(delta)
        return delta, delta
