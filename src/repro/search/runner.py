"""Multi-agent NAS runner over the simulated cluster (§3.2, Fig. 2/3).

Each agent is a coroutine process of the discrete-event kernel:

    loop until wall-clock limit or convergence:
      1. sample M architectures from the agent's LSTM policy
         (RDM: uniform random actions)
      2. submit them through the agent's Balsam evaluator and wait for
         the batch (per-agent batch synchronization, §5.1)
      3. compute the PPO update; exchange it through the parameter
         server (A2C: synchronous barrier; A3C: asynchronous average of
         recent updates) and apply the returned average
      4. log reward records; stop when ``convergence_patience``
         consecutive batches were pure cache hits

The search stops when every agent has stopped, or at the wall-time
limit, whichever is first — matching the paper's runs, where A3C on
Combo/NT3 ended early "because all the agents generate the same
architecture for which the agent-specific cache returns the same
reward".

Fault tolerance (see ``docs/robustness.md``): a
:class:`~repro.hpc.faults.FaultConfig` on the search config drives node
failures, job crashes, stragglers and service outages; the Balsam
service retries failed jobs with capped exponential backoff and
surfaces exhausted jobs as failure rewards; a crashed agent coroutine
deregisters from the parameter server cleanly (no deadlocked barrier)
and is reported in ``SearchResult.failed_agents``; and
``checkpoint_interval`` captures resumable
:class:`~repro.search.checkpoint.SearchCheckpoint` snapshots from which
a killed search continues deterministically.  With none of these knobs
set, the loop is byte-for-byte the fault-free search.
"""

from __future__ import annotations

import copy

import numpy as np

from ..evaluator.balsam import BalsamEvaluator, BalsamService
from ..health.guards import NumericalAnomaly
from ..health.recovery import AgentHealth, DeltaSanitizer
from ..hpc.cluster import Cluster
from ..hpc.faults import FaultInjector
from ..hpc.sim import Interrupt, Simulator, Timeout
from ..nas.space import Structure
from ..rewards.base import RewardModel
from ..rl.parameter_server import ParameterServer
from ..rl.policy import LSTMPolicy
from ..rl.sharded_ps import ShardedParameterServer
from ..rl.ppo import PPOConfig, PPOUpdater
from ..verify.fingerprint import agent_genesis, chain_step
from .base import RewardRecord, SearchConfig, SearchResult
from .checkpoint import AgentBoundary, AgentCheckpoint, SearchCheckpoint

__all__ = ["NasSearch", "run_search", "resume_search"]


class NasSearch:
    """Binds a search space + reward model to a :class:`SearchConfig`.

    ``resume_from`` restarts a previously checkpointed search: finished
    agents stay finished, unfinished agents restart at their recorded
    iteration boundaries with restored policy/RNG/cache state, and the
    parameter server resumes its exchange history.
    """

    def __init__(self, space: Structure, reward_model: RewardModel,
                 config: SearchConfig | None = None,
                 resume_from: SearchCheckpoint | None = None) -> None:
        self.space = space
        self.reward_model = reward_model
        self.config = config or SearchConfig()
        cfg = self.config

        self.sim = Simulator()
        alloc = cfg.allocation
        self.cluster = Cluster(self.sim, alloc.worker_nodes)
        self.injector = (FaultInjector(self.sim, cfg.faults)
                         if cfg.faults is not None and cfg.faults.enabled
                         else None)
        self.service = BalsamService(
            self.sim, self.cluster, faults=self.injector,
            max_retries=cfg.max_eval_retries,
            retry_backoff=cfg.retry_backoff,
            retry_backoff_cap=cfg.retry_backoff_cap)
        self.records: list[RewardRecord] = []
        self._converged_agents = 0
        self._failed_agents: list[tuple[int, str]] = []
        self._done_agents: dict[int, bool] = {}    # agent_id -> converged
        self._boundaries: dict[int, AgentBoundary] = {}
        #: per-agent rolling trajectory digests (repro.verify.fingerprint)
        self._digests: dict[int, str] = {}
        self._resume: dict[int, AgentBoundary] = {}
        self._search_end_time: float | None = None
        self._ckpt_proc = None
        #: checkpoints captured during run() (newest last)
        self.checkpoints: list[SearchCheckpoint] = []
        #: health-layer bookkeeping: per-agent resurrections and
        #: policy rollbacks (repro.health; stays empty with guards off)
        self._restarts: dict[int, int] = {}
        self._rollbacks: dict[int, int] = {}

        guard = cfg.guard
        guarded = guard is not None and guard.enabled
        sanitizer = DeltaSanitizer.from_guard(guard) if guarded else None
        max_age = guard.max_delta_age if guarded else None

        n = alloc.num_agents
        dims = space.action_dims
        if cfg.method == "a2c":
            self.ps: ParameterServer | ShardedParameterServer | None = \
                ParameterServer(self.sim, n, mode="sync",
                                staleness_window=cfg.staleness_window,
                                sanitizer=sanitizer)
        elif cfg.method == "a3c":
            if cfg.ps_shards > 1:
                # shards screen their own slices; whole-vector delta
                # hygiene is only wired for the unsharded servers
                probe = LSTMPolicy(dims, hidden=cfg.hidden,
                                   embed_dim=cfg.embed_dim, seed=0)
                self.ps = ShardedParameterServer(
                    self.sim, n, vector_size=probe.num_params,
                    num_shards=cfg.ps_shards,
                    staleness_window=cfg.staleness_window,
                    service_time=cfg.ps_service_time)
            else:
                self.ps = ParameterServer(
                    self.sim, n, mode="async",
                    staleness_window=cfg.staleness_window,
                    service_time=cfg.ps_service_time,
                    sanitizer=sanitizer, max_delta_age=max_age)
        else:
            self.ps = None

        self.policies: list[LSTMPolicy | None] = []
        self.updaters: list[PPOUpdater | None] = []
        self.evaluators: list[BalsamEvaluator] = []
        for agent_id in range(n):
            self.evaluators.append(BalsamEvaluator(
                self.service, reward_model, agent_id,
                use_cache=cfg.use_cache,
                batch_deadline=cfg.batch_deadline))
            if cfg.method == "rdm":
                self.policies.append(None)
                self.updaters.append(None)
            else:
                init_seed = (cfg.seed if cfg.shared_policy_init
                             else cfg.seed * 10_000 + agent_id)
                policy = LSTMPolicy(dims, hidden=cfg.hidden,
                                    embed_dim=cfg.embed_dim,
                                    seed=init_seed)
                self.policies.append(policy)
                self.updaters.append(PPOUpdater(policy, PPOConfig(
                    clip=cfg.ppo_clip, epochs=cfg.ppo_epochs,
                    lr=cfg.lr,
                    entropy_coef=cfg.entropy_coef)))

        if resume_from is not None:
            self._apply_checkpoint(resume_from)
        self._live_agents = n - len(self._done_agents)

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        cfg = self.config
        if self.injector is not None:
            self.injector.attach(self.cluster)
        if cfg.checkpoint_interval is not None and self._live_agents > 0:
            self._ckpt_proc = self.sim.process(self._checkpoint_clock(),
                                               name="checkpoint")
        for agent_id in range(cfg.allocation.num_agents):
            if agent_id in self._done_agents:
                continue
            self.sim.process(self._agent(agent_id), name=f"agent{agent_id}")
        self.sim.run(until=cfg.wall_time)
        now = self.sim.now
        if self._live_agents == 0 and self._search_end_time is not None:
            # ignore stale timers (checkpoint clock, retry backoffs,
            # injector repairs) that outlived the last agent
            now = self._search_end_time
        end_time = min(now, cfg.wall_time)
        converged = (self._converged_agents == cfg.allocation.num_agents
                     and end_time < cfg.wall_time)
        unique = len({rec.arch.key for rec in self.records})
        return SearchResult(cfg, self.records, self.cluster, end_time,
                            converged, unique,
                            failed_agents=list(self._failed_agents),
                            num_failed_evals=sum(ev.num_failed
                                                 for ev in self.evaluators),
                            agent_digests=dict(self._digests),
                            agent_restarts=dict(self._restarts),
                            agent_rollbacks=dict(self._rollbacks))

    # ------------------------------------------------------------------
    def _agent(self, agent_id: int):
        """Crash-safe wrapper: whatever happens inside the agent body,
        the agent deregisters from the parameter server (the sync
        barrier shrinks instead of deadlocking) and the search accounts
        for it.

        With ``max_restarts > 0`` a crashed agent (including one whose
        numerical guard escalated) is *resurrected*: restored to its
        last iteration boundary — the same mechanics checkpoint resume
        uses, applied in-run — and re-registered with the parameter
        server.  Interrupts (external cancellation) never resurrect.
        """
        cfg = self.config
        converged = False
        restarts_left = cfg.max_restarts
        while True:
            crashed = None
            try:
                converged = yield from self._agent_body(agent_id)
            except Interrupt as intr:
                crashed = f"interrupted: {intr.cause}"
                break
            except Exception as exc:    # noqa: BLE001 — surfaced in result
                crashed = f"{type(exc).__name__}: {exc}"
            if crashed is None:
                break
            boundary = self._boundaries.get(agent_id)
            if restarts_left <= 0 or boundary is None \
                    or self.sim.now >= cfg.wall_time:
                break
            restarts_left -= 1
            self._restarts[agent_id] = self._restarts.get(agent_id, 0) + 1
            self._resurrect(agent_id, boundary)
        if crashed is not None:
            self._failed_agents.append((agent_id, crashed))
        self._done_agents[agent_id] = bool(converged)
        if converged:
            self._converged_agents += 1
        if self.ps is not None:
            self.ps.deregister(failed=crashed is not None)
        self._boundaries.pop(agent_id, None)
        self._live_agents -= 1
        if self._live_agents == 0:
            self._search_end_time = self.sim.now
            if self._ckpt_proc is not None:
                self._ckpt_proc.interrupt("search finished")
            if self.injector is not None:
                self.injector.stop()

    def _resurrect(self, agent_id: int, boundary: AgentBoundary) -> None:
        """Restore a crashed agent to its last iteration boundary.

        The crashed lifetime leaves the parameter-server barrier first
        (``deregister(failed=True)`` — exactly what a permanent death
        does, so a mid-round crash can never deadlock the others), then
        the fresh lifetime re-registers; ``register`` withdraws any
        pending push the dead lifetime left in the current sync round,
        and never releases a round itself, so the crash/resurrect pair
        cannot double-release a barrier.
        """
        if self.ps is not None:
            self.ps.deregister(failed=True)
        # drop records the crashed lifetime appended past the boundary;
        # the replay re-records them (same trimming checkpoint resume
        # applies)
        budget = boundary.num_records
        kept = []
        for rec in self.records:
            if rec.agent_id == agent_id:
                if budget <= 0:
                    continue
                budget -= 1
            kept.append(rec)
        self.records = kept
        ev = self.evaluators[agent_id]
        ev.num_submitted = boundary.num_submitted
        ev.num_cache_hits = boundary.num_cache_hits
        ev.num_failed = boundary.num_failed
        policy = self.policies[agent_id]
        if policy is not None and boundary.policy_flat is not None:
            policy.set_flat(np.asarray(boundary.policy_flat))
        updater = self.updaters[agent_id]
        if updater is not None and boundary.opt_state is not None:
            updater.optimizer.restore_state(boundary.opt_state)
        if updater is not None and boundary.lr is not None:
            updater.optimizer.lr = boundary.lr
        self._resume[agent_id] = boundary
        if self.ps is not None:
            self.ps.register(agent_id)

    def _agent_body(self, agent_id: int):
        cfg = self.config
        sim = self.sim
        evaluator = self.evaluators[agent_id]
        policy = self.policies[agent_id]
        updater = self.updaters[agent_id]
        batch = cfg.allocation.workers_per_agent
        dims = np.array(self.space.action_dims)
        converged = False
        # iteration boundaries feed both checkpointing and in-run
        # resurrection; either feature being on captures them
        capture = cfg.checkpoint_interval is not None \
            or cfg.max_restarts > 0
        guard = cfg.guard
        health = (AgentHealth(guard, base_lr=cfg.lr)
                  if updater is not None and guard is not None
                  and guard.enabled else None)

        resume = self._resume.pop(agent_id, None)
        if resume is not None:
            # restart at the recorded iteration boundary: restored RNG
            # and policy re-generate the in-flight batch exactly.  For
            # checkpoint resume sim.now is 0 and this sleeps to the
            # boundary time; for in-run resurrection the boundary is in
            # the past and the agent restarts immediately.
            rng = np.random.default_rng(0)
            rng.bit_generator.state = copy.deepcopy(resume.rng_state)
            consecutive_cached = resume.consecutive_cached
            iteration = resume.iteration
            my_records = resume.num_records
            digest = resume.traj_digest or agent_genesis(cfg.seed, agent_id)
            self._digests[agent_id] = digest
            yield Timeout(max(0.0, resume.time - sim.now))
        else:
            rng = np.random.default_rng((cfg.seed, agent_id, 0xA6E))
            consecutive_cached = 0
            iteration = 0
            my_records = 0
            digest = agent_genesis(cfg.seed, agent_id)
            self._digests[agent_id] = digest
            # stagger startup slightly so same-instant submissions don't
            # all carry identical timestamps (and to model ramp-up)
            yield Timeout(rng.uniform(0.0, 2.0))

        while sim.now < cfg.wall_time:
            if capture:
                self._boundaries[agent_id] = AgentBoundary(
                    time=sim.now, iteration=iteration,
                    rng_state=copy.deepcopy(rng.bit_generator.state),
                    policy_flat=(None if policy is None
                                 else policy.get_flat()),
                    opt_state=(None if updater is None
                               else updater.optimizer.export_state()),
                    consecutive_cached=consecutive_cached,
                    cache_len=(len(evaluator.cache)
                               if evaluator.cache is not None else 0),
                    num_records=my_records,
                    num_submitted=evaluator.num_submitted,
                    num_cache_hits=evaluator.num_cache_hits,
                    num_failed=evaluator.num_failed,
                    traj_digest=digest,
                    lr=(updater.optimizer.lr
                        if updater is not None and guard is not None
                        and guard.recovers else None))
            if policy is None:  # RDM
                actions = rng.integers(0, dims, size=(batch, len(dims)))
                rollout = None
            else:
                rollout = policy.sample(batch, rng)
                actions = rollout.actions
            archs = [self.space.decode(row) for row in actions]

            batch_done = evaluator.add_eval_batch(archs)
            yield batch_done
            recs = evaluator.get_finished_evals()

            # align rewards with the rollout's row order
            by_key: dict[tuple, list] = {}
            for rec in recs:
                by_key.setdefault(rec.arch.key, []).append(rec)
            rewards = np.empty(len(archs))
            for i, arch in enumerate(archs):
                rec = by_key[arch.key].pop(0)
                rewards[i] = rec.reward
                self.records.append(RewardRecord(
                    rec.end_time, agent_id, rec.arch, rec.reward,
                    rec.result.params, rec.result.duration, rec.cached,
                    rec.result.timed_out))
                my_records += 1

            if updater is not None:
                if health is not None:
                    # pre-update state is last-known-good: a poisoned
                    # update is undone exactly by restoring it
                    health.snapshot(iteration, policy.get_flat(),
                                    updater.optimizer.export_state())
                delta, stats = updater.update_delta(rollout, rewards)
                delta, push_delta = self._inject_numeric(
                    agent_id, iteration, policy, delta)
                if health is not None:
                    anomaly = health.check_update(policy.get_flat(),
                                                  delta, stats)
                    if anomaly is not None:
                        if not guard.recovers:
                            # check mode: crash the agent; the wrapper
                            # resurrects it (or reports it) from there
                            raise NumericalAnomaly(
                                anomaly, f"agent{agent_id}",
                                "numerical guard tripped (mode=check)")
                        # recover mode: roll back to the last good
                        # snapshot with LR backoff (escalates to a crash
                        # once the lifetime rollback budget is spent)
                        health.rollback(policy, updater.optimizer)
                        self._rollbacks[agent_id] = \
                            self._rollbacks.get(agent_id, 0) + 1
                        # the poisoned local step is undone; contribute
                        # nothing to the exchange this iteration
                        delta = np.zeros_like(delta)
                        push_delta = delta
                if self.ps.mode == "sync":
                    avg = yield self.ps.push_sync(push_delta, agent_id)
                elif cfg.ps_service_time > 0.0:
                    avg = yield self.ps.push_async_timed(push_delta)
                else:
                    avg = self.ps.push_async(push_delta)
                # update_delta already applied the local delta; replace it
                # with the parameter server's average
                policy.add_flat(avg - delta)

            # advance the agent's trajectory digest: what it sampled,
            # what it was paid, and where its policy landed
            digest = chain_step(digest, actions, rewards,
                                None if policy is None
                                else policy.get_flat())
            self._digests[agent_id] = digest

            if evaluator.last_batch_all_cached:
                consecutive_cached += 1
            else:
                consecutive_cached = 0
            iteration += 1
            if consecutive_cached >= cfg.convergence_patience:
                converged = True
                break

        return converged

    def _inject_numeric(self, agent_id: int, iteration: int, policy,
                        delta: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Apply this iteration's numerical fault draw, if any.

        Returns ``(local_delta, push_delta)``: the delta as the agent's
        own policy experienced it, and the (possibly separately
        corrupted) copy sent to the parameter server.  With numerical
        faults disabled both are the incoming delta, untouched.
        """
        if self.injector is None:
            return delta, delta
        fault = self.injector.numeric_fault(
            agent_id, iteration, self._restarts.get(agent_id, 0))
        if fault is None or fault.none:
            return delta, delta
        self.injector.num_numeric_faults += 1
        if fault.nan_grad:
            # a corrupted gradient buffer: the local update (already
            # applied by update_delta) and its delta both carry NaN
            poison = np.zeros_like(delta)
            poison[0] = np.nan
            policy.add_flat(poison)
            delta = delta.copy()
            delta[0] = np.nan
            return delta, delta
        if fault.exploding_loss:
            # a diverged local policy: the update direction is real but
            # enormously overscaled
            factor = self.injector.config.exploding_factor
            policy.add_flat(delta * (factor - 1.0))
            delta = delta * factor
            return delta, delta
        # corrupt_delta: corruption in flight — the local policy stays
        # healthy, only the copy pushed to the parameter server is bad
        push_delta = delta.copy()
        push_delta[0] = np.nan
        return delta, push_delta

    # -- checkpointing --------------------------------------------------
    def _checkpoint_clock(self):
        interval = self.config.checkpoint_interval
        try:
            while True:
                yield Timeout(interval)
                self._capture_checkpoint()
        except Interrupt:
            return

    def _capture_checkpoint(self) -> SearchCheckpoint:
        """Snapshot the search into a :class:`SearchCheckpoint`."""
        cfg = self.config
        agents = []
        for agent_id in range(cfg.allocation.num_agents):
            ev = self.evaluators[agent_id]
            if agent_id in self._done_agents:
                entries = (ev.cache.snapshot()
                           if ev.cache is not None else [])
                agents.append(AgentCheckpoint(
                    agent_id, done=True,
                    converged=self._done_agents[agent_id],
                    boundary=None, cache_entries=entries,
                    traj_digest=self._digests.get(agent_id)))
                continue
            boundary = self._boundaries.get(agent_id)
            if boundary is None:
                # agent spawned but still in its startup stagger: resume
                # will simply start it fresh (deterministically equal)
                agents.append(AgentCheckpoint(
                    agent_id, done=False, converged=False, boundary=None))
                continue
            entries = (ev.cache.snapshot(boundary.cache_len)
                       if ev.cache is not None else [])
            agents.append(AgentCheckpoint(
                agent_id, done=False, converged=False,
                boundary=boundary, cache_entries=entries))

        ps_state = (self.ps.export_state()
                    if isinstance(self.ps, ParameterServer) else None)
        ckpt = SearchCheckpoint(
            time=self.sim.now, seed=cfg.seed, method=cfg.method,
            space_name=self.space.name,
            num_agents=cfg.allocation.num_agents,
            wall_time=cfg.wall_time,
            records=list(self.records), agents=agents, ps_state=ps_state,
            converged_agents=self._converged_agents,
            failed_agents=list(self._failed_agents),
            agent_restarts=dict(self._restarts),
            agent_rollbacks=dict(self._rollbacks))
        self.checkpoints.append(ckpt)
        if cfg.checkpoint_path is not None:
            ckpt.save(cfg.checkpoint_path)
        return ckpt

    def _apply_checkpoint(self, ckpt: SearchCheckpoint) -> None:
        cfg = self.config
        if ckpt.num_agents != cfg.allocation.num_agents:
            raise ValueError(
                f"checkpoint has {ckpt.num_agents} agents, config has "
                f"{cfg.allocation.num_agents}")
        if ckpt.method != cfg.method:
            raise ValueError(
                f"checkpoint method {ckpt.method!r} != config "
                f"{cfg.method!r}")
        if ckpt.space_name != self.space.name:
            raise ValueError(
                f"checkpoint space {ckpt.space_name!r} != "
                f"{self.space.name!r}")
        if ckpt.seed != cfg.seed:
            raise ValueError(
                f"checkpoint seed {ckpt.seed} != config seed {cfg.seed}; "
                f"deterministic resume requires the same seed")
        # drop records a resuming agent appended past its boundary (a
        # sync agent parked at the barrier has already recorded its
        # in-flight iteration); the replay re-records them
        budget = {a.agent_id: a.boundary.num_records for a in ckpt.agents
                  if not a.done and a.boundary is not None}
        self.records = []
        for rec in ckpt.records:
            if rec.agent_id in budget:
                if budget[rec.agent_id] <= 0:
                    continue
                budget[rec.agent_id] -= 1
            self.records.append(rec)
        self._converged_agents = ckpt.converged_agents
        self._failed_agents = [tuple(fa) for fa in ckpt.failed_agents]
        self._restarts = dict(ckpt.agent_restarts)
        self._rollbacks = dict(ckpt.agent_rollbacks)
        for agent in ckpt.agents:
            ev = self.evaluators[agent.agent_id]
            if ev.cache is not None and agent.cache_entries:
                ev.cache.restore(agent.cache_entries)
            if agent.done:
                self._done_agents[agent.agent_id] = agent.converged
                if agent.traj_digest:
                    self._digests[agent.agent_id] = agent.traj_digest
                continue
            boundary = agent.boundary
            if boundary is None:
                continue            # starts fresh, deterministically
            self._resume[agent.agent_id] = boundary
            ev.num_submitted = boundary.num_submitted
            ev.num_cache_hits = boundary.num_cache_hits
            ev.num_failed = boundary.num_failed
            policy = self.policies[agent.agent_id]
            if policy is not None and boundary.policy_flat is not None:
                policy.set_flat(np.asarray(boundary.policy_flat))
            updater = self.updaters[agent.agent_id]
            if updater is not None and boundary.opt_state is not None:
                updater.optimizer.restore_state(boundary.opt_state)
            if updater is not None and boundary.lr is not None:
                updater.optimizer.lr = boundary.lr
        if ckpt.ps_state is not None and isinstance(self.ps,
                                                    ParameterServer):
            self.ps.restore_state(ckpt.ps_state)


def run_search(space: Structure, reward_model: RewardModel,
               config: SearchConfig | None = None) -> SearchResult:
    """Convenience one-call search run."""
    return NasSearch(space, reward_model, config).run()


def resume_search(space: Structure, reward_model: RewardModel,
                  checkpoint: SearchCheckpoint,
                  config: SearchConfig | None = None) -> SearchResult:
    """Resume a checkpointed search and run it to completion."""
    return NasSearch(space, reward_model, config,
                     resume_from=checkpoint).run()
