"""Multi-agent NAS runner over the simulated cluster (§3.2, Fig. 2/3).

Each agent is a coroutine process of the discrete-event kernel:

    loop until wall-clock limit or convergence:
      1. sample M architectures from the agent's LSTM policy
         (RDM: uniform random actions)
      2. submit them through the agent's Balsam evaluator and wait for
         the batch (per-agent batch synchronization, §5.1)
      3. compute the PPO update; exchange it through the parameter
         server (A2C: synchronous barrier; A3C: asynchronous average of
         recent updates) and apply the returned average
      4. log reward records; stop when ``convergence_patience``
         consecutive batches were pure cache hits

The search stops when every agent has stopped, or at the wall-time
limit, whichever is first — matching the paper's runs, where A3C on
Combo/NT3 ended early "because all the agents generate the same
architecture for which the agent-specific cache returns the same
reward".
"""

from __future__ import annotations

import numpy as np

from ..evaluator.balsam import BalsamEvaluator, BalsamService
from ..hpc.cluster import Cluster
from ..hpc.sim import Simulator, Timeout
from ..nas.space import Structure
from ..rewards.base import RewardModel
from ..rl.parameter_server import ParameterServer
from ..rl.policy import LSTMPolicy
from ..rl.sharded_ps import ShardedParameterServer
from ..rl.ppo import PPOConfig, PPOUpdater
from .base import RewardRecord, SearchConfig, SearchResult

__all__ = ["NasSearch", "run_search"]


class NasSearch:
    """Binds a search space + reward model to a :class:`SearchConfig`."""

    def __init__(self, space: Structure, reward_model: RewardModel,
                 config: SearchConfig | None = None) -> None:
        self.space = space
        self.reward_model = reward_model
        self.config = config or SearchConfig()

        self.sim = Simulator()
        alloc = self.config.allocation
        self.cluster = Cluster(self.sim, alloc.worker_nodes)
        self.service = BalsamService(self.sim, self.cluster)
        self.records: list[RewardRecord] = []
        self._converged_agents = 0

        n = alloc.num_agents
        dims = space.action_dims
        if self.config.method == "a2c":
            self.ps: ParameterServer | ShardedParameterServer | None = \
                ParameterServer(self.sim, n, mode="sync",
                                staleness_window=self.config.staleness_window)
        elif self.config.method == "a3c":
            if self.config.ps_shards > 1:
                probe = LSTMPolicy(dims, hidden=self.config.hidden,
                                   embed_dim=self.config.embed_dim, seed=0)
                self.ps = ShardedParameterServer(
                    self.sim, n, vector_size=probe.num_params,
                    num_shards=self.config.ps_shards,
                    staleness_window=self.config.staleness_window,
                    service_time=self.config.ps_service_time)
            else:
                self.ps = ParameterServer(
                    self.sim, n, mode="async",
                    staleness_window=self.config.staleness_window,
                    service_time=self.config.ps_service_time)
        else:
            self.ps = None

        self.policies: list[LSTMPolicy | None] = []
        self.updaters: list[PPOUpdater | None] = []
        self.evaluators: list[BalsamEvaluator] = []
        for agent_id in range(n):
            self.evaluators.append(BalsamEvaluator(
                self.service, reward_model, agent_id,
                use_cache=self.config.use_cache))
            if self.config.method == "rdm":
                self.policies.append(None)
                self.updaters.append(None)
            else:
                init_seed = (self.config.seed if self.config.shared_policy_init
                             else self.config.seed * 10_000 + agent_id)
                policy = LSTMPolicy(dims, hidden=self.config.hidden,
                                    embed_dim=self.config.embed_dim,
                                    seed=init_seed)
                self.policies.append(policy)
                self.updaters.append(PPOUpdater(policy, PPOConfig(
                    clip=self.config.ppo_clip, epochs=self.config.ppo_epochs,
                    lr=self.config.lr,
                    entropy_coef=self.config.entropy_coef)))

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        cfg = self.config
        for agent_id in range(cfg.allocation.num_agents):
            self.sim.process(self._agent(agent_id), name=f"agent{agent_id}")
        self.sim.run(until=cfg.wall_time)
        end_time = min(self.sim.now, cfg.wall_time)
        converged = (self._converged_agents == cfg.allocation.num_agents
                     and end_time < cfg.wall_time)
        unique = len({rec.arch.key for rec in self.records})
        return SearchResult(cfg, self.records, self.cluster, end_time,
                            converged, unique)

    # ------------------------------------------------------------------
    def _agent(self, agent_id: int):
        cfg = self.config
        sim = self.sim
        evaluator = self.evaluators[agent_id]
        policy = self.policies[agent_id]
        updater = self.updaters[agent_id]
        batch = cfg.allocation.workers_per_agent
        rng = np.random.default_rng((cfg.seed, agent_id, 0xA6E))
        dims = np.array(self.space.action_dims)
        consecutive_cached = 0
        converged = False

        # stagger startup slightly so same-instant submissions don't all
        # carry identical timestamps (and to model ramp-up)
        yield Timeout(rng.uniform(0.0, 2.0))

        while sim.now < cfg.wall_time:
            if policy is None:  # RDM
                actions = rng.integers(0, dims, size=(batch, len(dims)))
                rollout = None
            else:
                rollout = policy.sample(batch, rng)
                actions = rollout.actions
            archs = [self.space.decode(row) for row in actions]

            batch_done = evaluator.add_eval_batch(archs)
            yield batch_done
            recs = evaluator.get_finished_evals()

            # align rewards with the rollout's row order
            by_key: dict[tuple, list] = {}
            for rec in recs:
                by_key.setdefault(rec.arch.key, []).append(rec)
            rewards = np.empty(len(archs))
            for i, arch in enumerate(archs):
                rec = by_key[arch.key].pop(0)
                rewards[i] = rec.reward
                self.records.append(RewardRecord(
                    rec.end_time, agent_id, rec.arch, rec.reward,
                    rec.result.params, rec.result.duration, rec.cached,
                    rec.result.timed_out))

            if updater is not None:
                delta, _ = updater.update_delta(rollout, rewards)
                if self.ps.mode == "sync":
                    avg = yield self.ps.push_sync(delta)
                elif cfg.ps_service_time > 0.0:
                    avg = yield self.ps.push_async_timed(delta)
                else:
                    avg = self.ps.push_async(delta)
                # update_delta already applied the local delta; replace it
                # with the parameter server's average
                policy.add_flat(avg - delta)

            if evaluator.last_batch_all_cached:
                consecutive_cached += 1
            else:
                consecutive_cached = 0
            if consecutive_cached >= cfg.convergence_patience:
                converged = True
                break

        if self.ps is not None:
            self.ps.deregister()
        if converged:
            self._converged_agents += 1


def run_search(space: Structure, reward_model: RewardModel,
               config: SearchConfig | None = None) -> SearchResult:
    """Convenience one-call search run."""
    return NasSearch(space, reward_model, config).run()
