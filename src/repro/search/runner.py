"""Multi-agent NAS runner over the simulated cluster (§3.2, Fig. 2/3).

The runner is a thin composition root.  Each agent is an
:class:`~repro.search.loop.AgentLoop` coroutine wired from the runtime
seams (see ``docs/architecture.md``):

* a shared :class:`~repro.search.proposer.Proposer` paired with an
  :class:`~repro.search.exchange.ExchangeStrategy` by the method
  registry (:data:`~repro.search.methods.SEARCH_METHODS`);
* a per-agent :class:`~repro.evaluator.balsam.BalsamEvaluator`
  (an :class:`~repro.evaluator.broker.EvalBroker`) over the shared
  Balsam service;
* a :class:`~repro.search.hooks.HookStack` through which checkpoint
  boundary capture, numeric fault injection, and health guards attach.

What is left here is orchestration: spawning agents, the crash-safe
wrapper with resurrection, checkpoint capture/restore, and final
accounting.  All layers emit :class:`~repro.events.SearchEvent` records
to an optional ``event_sink``.

The search stops when every agent has stopped, or at the wall-time
limit, whichever is first — matching the paper's runs, where A3C on
Combo/NT3 ended early "because all the agents generate the same
architecture for which the agent-specific cache returns the same
reward".

Fault tolerance (see ``docs/robustness.md``): a
:class:`~repro.hpc.faults.FaultConfig` on the search config drives node
failures, job crashes, stragglers and service outages; the Balsam
service retries failed jobs with capped exponential backoff and
surfaces exhausted jobs as failure rewards; a crashed agent coroutine
deregisters from the parameter server cleanly (no deadlocked barrier)
and is reported in ``SearchResult.failed_agents``; and
``checkpoint_interval`` captures resumable
:class:`~repro.search.checkpoint.SearchCheckpoint` snapshots from which
a killed search continues deterministically.  With none of these knobs
set, the loop is byte-for-byte the fault-free search.
"""

from __future__ import annotations

import signal

import numpy as np

from ..evaluator.balsam import BalsamEvaluator, BalsamService
from ..evaluator.process import ProcessEvaluator
from ..evaluator.serial import SerialEvaluator
from ..evaluator.thread import ThreadEvaluator
from ..events import (AGENT_DONE, CHECKPOINT, CRASH, PREEMPT, RESTART,
                      EventSink, TeeSink, emit)
from ..hpc.cluster import Cluster
from ..hpc.faults import FaultInjector
from ..hpc.sim import Interrupt, Simulator, Timeout
from ..nas.plancache import PlanCache
from ..nas.space import Structure
from ..rewards.base import RewardModel
from ..rl.policy import LSTMPolicy
from ..rl.ppo import PPOConfig, PPOUpdater
from .base import RewardRecord, SearchConfig, SearchResult
from .checkpoint import AgentBoundary, AgentCheckpoint, SearchCheckpoint
from .methods import SEARCH_METHODS, build_exchange, build_proposer
from .hooks import (BoundaryHook, HealthHook, HookStack, NumericFaultHook,
                    RecordCheckpointHook)
from .journal import SearchJournal
from .loop import AgentLoop

__all__ = ["NasSearch", "run_search", "resume_search"]


class NasSearch:
    """Binds a search space + reward model to a :class:`SearchConfig`.

    ``resume_from`` restarts a previously checkpointed search: finished
    agents stay finished, unfinished agents restart at their recorded
    iteration boundaries with restored policy/RNG/cache state, and the
    parameter server resumes its exchange history.  ``event_sink``
    receives the structured event stream from every layer.
    """

    def __init__(self, space: Structure, reward_model: RewardModel,
                 config: SearchConfig | None = None,
                 resume_from: SearchCheckpoint | None = None,
                 event_sink: EventSink | None = None,
                 journal: SearchJournal | None = None,
                 replay: dict | None = None) -> None:
        self.space = space
        self.reward_model = reward_model
        self.config = cfg = config or SearchConfig()
        self._attach_journal(journal, event_sink)

        self.sim = Simulator()
        self.cluster = Cluster(self.sim, cfg.allocation.worker_nodes)
        self.injector = (FaultInjector(self.sim, cfg.faults)
                         if cfg.faults is not None and cfg.faults.enabled
                         else None)
        self.service = BalsamService(
            self.sim, self.cluster, faults=self.injector,
            max_retries=cfg.max_eval_retries,
            retry_backoff=cfg.retry_backoff,
            retry_backoff_cap=cfg.retry_backoff_cap)
        self.exchange = build_exchange(self.sim, cfg, space, sink=self.sink)
        self.proposer = build_proposer(cfg, space, self.exchange)
        if cfg.plan_cache and reward_model.plan_cache is None:
            # one shared compile cache for every agent; a reward model
            # that already carries one (checkpoint resume, explicit
            # attachment) keeps it — warm plans survive the restart
            reward_model.set_plan_cache(PlanCache())

        self.records: list[RewardRecord] = []
        self._converged_agents = 0
        self._failed_agents: list[tuple[int, str]] = []
        self._done_agents: dict[int, bool] = {}    # agent_id -> converged
        self._boundaries: dict[int, AgentBoundary] = {}
        #: per-agent rolling trajectory digests (repro.verify.fingerprint)
        self._digests: dict[int, str] = {}
        self._resume: dict[int, AgentBoundary] = {}
        self._search_end_time: float | None = None
        self._ckpt_proc = None
        #: preemption cause (signal name or explicit request); None while
        #: the search is allowed to keep running
        self._preempt_cause: str | None = None
        #: checkpoints captured during run() (newest last)
        self.checkpoints: list[SearchCheckpoint] = []
        #: records present at the last capture (drives the
        #: ``checkpoint_every_records`` trigger)
        self._records_at_ckpt = 0
        #: a deferred record-count capture is already scheduled
        self._record_ckpt_pending = False
        #: journal-replay entries armed across all brokers at resume
        self.num_replay_loaded = 0
        #: health-layer bookkeeping: per-agent resurrections and
        #: policy rollbacks (repro.health; stays empty with guards off)
        self._restarts: dict[int, int] = {}
        self._rollbacks: dict[int, int] = {}

        self._build_agents()
        if resume_from is not None:
            self._apply_checkpoint(resume_from)
        self._load_replay(replay)
        self._live_agents = cfg.allocation.num_agents - len(self._done_agents)

    @property
    def ps(self):
        """The exchange's parameter server (None for RDM)."""
        return self.exchange.ps

    def _attach_journal(self, journal: SearchJournal | None,
                        event_sink: EventSink | None) -> None:
        """Durability root (repro.search.journal): every event is teed
        into the write-ahead journal, and checkpoints are written as
        verified generations next to it.  Constructed from
        ``cfg.journal_dir`` unless an instance is handed in (which is
        what ``resume_durable`` does, after reading it back)."""
        self.journal = journal
        if self.journal is None and self.config.journal_dir is not None:
            self.journal = SearchJournal(
                self.config.journal_dir,
                fsync_every=self.config.journal_fsync_every)
        self.sink = (TeeSink(self.journal.sink, event_sink)
                     if self.journal is not None else event_sink)

    def _load_replay(self, replay: dict | None) -> None:
        """Arm each broker with the dead run's journaled completions;
        the resumed trajectory deterministically re-submits exactly
        these architectures and they answer without re-executing."""
        if not replay:
            return
        for agent_id, entries in replay.items():
            self.evaluators[agent_id].load_replay(entries)
        self.num_replay_loaded = sum(len(v) for v in replay.values())

    def _build_evaluator(self, agent_id: int):
        """One agent's evaluator on the configured backend.

        The default "balsam" backend runs over the simulated service;
        the real backends (serial / thread / process) execute the reward
        model in host time.  All report record timestamps on the
        simulator clock so the event stream stays on one timeline.
        """
        cfg = self.config
        if cfg.backend == "balsam":
            return BalsamEvaluator(
                self.service, self.reward_model, agent_id,
                use_cache=cfg.use_cache,
                batch_deadline=cfg.batch_deadline, sink=self.sink)
        clock = lambda: self.sim.now    # noqa: E731 — bound late to sim
        if cfg.backend == "serial":
            return SerialEvaluator(self.reward_model, agent_id,
                                   use_cache=cfg.use_cache, clock=clock,
                                   sink=self.sink)
        if cfg.backend == "thread":
            return ThreadEvaluator(
                self.reward_model, agent_id,
                max_workers=cfg.allocation.workers_per_agent,
                use_cache=cfg.use_cache, clock=clock, sink=self.sink)
        return ProcessEvaluator(self.reward_model, agent_id,
                                config=cfg.proc, use_cache=cfg.use_cache,
                                clock=clock, sink=self.sink)

    def _build_agents(self) -> None:
        """Per-agent evaluator / policy / PPO updater triples."""
        cfg = self.config
        learns = SEARCH_METHODS[cfg.method].learns
        self.policies: list[LSTMPolicy | None] = []
        self.updaters: list[PPOUpdater | None] = []
        self.evaluators: list[BalsamEvaluator] = []
        for agent_id in range(cfg.allocation.num_agents):
            self.evaluators.append(self._build_evaluator(agent_id))
            if not learns:
                self.policies.append(None)
                self.updaters.append(None)
                continue
            init_seed = (cfg.seed if cfg.shared_policy_init
                         else cfg.seed * 10_000 + agent_id)
            policy = LSTMPolicy(self.space.action_dims, hidden=cfg.hidden,
                                embed_dim=cfg.embed_dim, seed=init_seed)
            self.policies.append(policy)
            self.updaters.append(PPOUpdater(policy, PPOConfig(
                clip=cfg.ppo_clip, epochs=cfg.ppo_epochs, lr=cfg.lr,
                entropy_coef=cfg.entropy_coef)))

    # ------------------------------------------------------------------
    def request_preemption(self, cause: str = "request") -> None:
        """Ask the search to stop at the next event boundary.

        Safe to call from a signal handler or any thread: it only flips
        a flag; the event loop observes it before its next callback,
        where every agent is parked at a yield point and the state is
        checkpoint-consistent.  ``run()`` then captures a resumable
        checkpoint and returns with ``SearchResult.preempted``.
        """
        self._preempt_cause = cause

    def _install_signal_handlers(self):
        """SIGTERM/SIGINT → graceful preemption (restored after run)."""
        previous = {}

        def handler(signum, frame):
            self.request_preemption(signal.Signals(signum).name)

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[sig] = signal.signal(sig, handler)
            except ValueError:
                pass    # not the main thread: run unprotected
        return previous

    def run(self) -> SearchResult:
        try:
            return self._run()
        finally:
            if self.journal is not None:
                self.journal.close()

    def _run(self) -> SearchResult:
        cfg = self.config
        if self.injector is not None:
            self.injector.attach(self.cluster)
        if cfg.checkpoint_interval is not None and self._live_agents > 0:
            self._ckpt_proc = self.sim.process(self._checkpoint_clock(),
                                               name="checkpoint")
        for agent_id in range(cfg.allocation.num_agents):
            if agent_id in self._done_agents:
                continue
            self.sim.process(self._agent(agent_id), name=f"agent{agent_id}")
        previous_handlers = (self._install_signal_handlers()
                             if cfg.preemptible else {})
        try:
            self.sim.run(until=cfg.wall_time,
                         stop=(lambda: self._preempt_cause is not None)
                         if cfg.preemptible else None)
        finally:
            for sig, old in previous_handlers.items():
                signal.signal(sig, old)
        preempted = self._preempt_cause is not None and self._live_agents > 0
        if preempted:
            # agents are parked at yield points; boundary trimming makes
            # the capture resumable from any stop point
            self._capture_checkpoint()
            emit(self.sink, PREEMPT, self.sim.now,
                 cause=self._preempt_cause)
        worker_stats: dict[str, int] = {}
        for ev in self.evaluators:
            ev.shutdown()
            if isinstance(ev, ProcessEvaluator):
                for key, val in ev.stats().items():
                    worker_stats[key] = worker_stats.get(key, 0) + val
        now = self.sim.now
        if self._live_agents == 0 and self._search_end_time is not None:
            # ignore stale timers (checkpoint clock, retry backoffs,
            # injector repairs) that outlived the last agent
            now = self._search_end_time
        end_time = min(now, cfg.wall_time)
        converged = (self._converged_agents == cfg.allocation.num_agents
                     and end_time < cfg.wall_time)
        unique = len({rec.arch.key for rec in self.records})
        return SearchResult(cfg, self.records, self.cluster, end_time,
                            converged, unique,
                            failed_agents=list(self._failed_agents),
                            num_failed_evals=sum(ev.num_failed
                                                 for ev in self.evaluators),
                            agent_digests=dict(self._digests),
                            agent_restarts=dict(self._restarts),
                            agent_rollbacks=dict(self._rollbacks),
                            preempted=preempted,
                            worker_stats=worker_stats)

    # -- the agent wrapper ---------------------------------------------
    def _build_loop(self, agent_id: int) -> AgentLoop:
        """Compose one agent *lifetime* from the three seams."""
        cfg = self.config
        updater = self.updaters[agent_id]
        guard = cfg.guard
        guarded = updater is not None and guard is not None and guard.enabled
        capture = (cfg.checkpoint_interval is not None
                   or cfg.checkpoint_every_records is not None
                   or cfg.max_restarts > 0 or cfg.preemptible
                   or self.journal is not None)
        hooks = HookStack([
            BoundaryHook(self._boundaries,
                         capture_lr=guard is not None and guard.recovers)
            if capture else None,
            RecordCheckpointHook(self._maybe_record_checkpoint)
            if cfg.checkpoint_every_records is not None else None,
            NumericFaultHook(self.injector,
                             self._restarts.get(agent_id, 0))
            if self.injector is not None and updater is not None else None,
            HealthHook(guard, base_lr=cfg.lr, rollbacks=self._rollbacks,
                       sink=self.sink) if guarded else None,
        ])
        return AgentLoop(
            sim=self.sim, space=self.space, config=cfg, agent_id=agent_id,
            evaluator=self.evaluators[agent_id],
            policy=self.policies[agent_id], updater=updater,
            proposer=self.proposer, hooks=hooks, records=self.records,
            digests=self._digests, resume=self._resume.pop(agent_id, None))

    def _agent(self, agent_id: int):
        """Crash-safe wrapper: whatever happens inside the agent loop,
        the agent leaves the exchange cleanly (the sync barrier shrinks
        instead of deadlocking) and the search accounts for it.

        With ``max_restarts > 0`` a crashed agent (including one whose
        numerical guard escalated) is *resurrected*: restored to its
        last iteration boundary — the same mechanics checkpoint resume
        uses, applied in-run — and re-registered with the exchange.
        Interrupts (external cancellation) never resurrect.
        """
        cfg = self.config
        converged = False
        restarts_left = cfg.max_restarts
        while True:
            crashed = None
            try:
                converged = yield from self._build_loop(agent_id).run()
            except Interrupt as intr:
                crashed = f"interrupted: {intr.cause}"
                break
            except Exception as exc:    # noqa: BLE001 — surfaced in result
                crashed = f"{type(exc).__name__}: {exc}"
            if crashed is None:
                break
            boundary = self._boundaries.get(agent_id)
            if restarts_left <= 0 or boundary is None \
                    or self.sim.now >= cfg.wall_time:
                break
            restarts_left -= 1
            self._restarts[agent_id] = self._restarts.get(agent_id, 0) + 1
            self._resurrect(agent_id, boundary, crashed)
        self._finish_agent(agent_id, converged, crashed)

    def _finish_agent(self, agent_id: int, converged: bool,
                      crashed: str | None) -> None:
        """Final accounting for a permanently stopped agent."""
        if crashed is not None:
            self._failed_agents.append((agent_id, crashed))
            emit(self.sink, CRASH, self.sim.now, agent_id, cause=crashed)
        self._done_agents[agent_id] = bool(converged)
        if converged:
            self._converged_agents += 1
        self.exchange.leave(failed=crashed is not None)
        self._boundaries.pop(agent_id, None)
        emit(self.sink, AGENT_DONE, self.sim.now, agent_id,
             converged=bool(converged))
        self._live_agents -= 1
        if self._live_agents == 0:
            self._search_end_time = self.sim.now
            if self._ckpt_proc is not None:
                self._ckpt_proc.interrupt("search finished")
            if self.injector is not None:
                self.injector.stop()

    def _resurrect(self, agent_id: int, boundary: AgentBoundary,
                   cause: str) -> None:
        """Restore a crashed agent to its last iteration boundary.

        The crashed lifetime leaves the exchange first
        (``leave(failed=True)`` — exactly what a permanent death does,
        so a mid-round crash can never deadlock the others), then the
        fresh lifetime rejoins; ``rejoin`` withdraws any pending push
        the dead lifetime left in the current sync round, and never
        releases a round itself, so the crash/resurrect pair cannot
        double-release a barrier.
        """
        self.exchange.leave(failed=True)
        # drop records the crashed lifetime appended past the boundary;
        # the replay re-records them (same trimming checkpoint resume
        # applies)
        budget = boundary.num_records
        kept = []
        for rec in self.records:
            if rec.agent_id == agent_id:
                if budget <= 0:
                    continue
                budget -= 1
            kept.append(rec)
        self.records = kept
        # shared-history proposers re-fold their state from the kept
        # records (the records ARE the history; see proposer.rebuild)
        self.proposer.rebuild(self.records)
        self._restore_agent_state(agent_id, boundary)
        self.exchange.rejoin(agent_id)
        # real_evals tells a journal replay (repro.search.journal) how
        # far to truncate this agent's accumulated eval-done stream —
        # the journal-side mirror of the record trimming above
        emit(self.sink, RESTART, self.sim.now, agent_id,
             boundary.iteration, cause=cause,
             real_evals=boundary.num_submitted - boundary.num_cache_hits)

    def _restore_agent_state(self, agent_id: int,
                             boundary: AgentBoundary) -> None:
        """Rewind one agent's evaluator/policy/optimizer to a boundary
        and queue it for a boundary resume (shared by in-run
        resurrection and checkpoint restore)."""
        self.evaluators[agent_id].restore_counters(
            boundary.num_submitted, boundary.num_cache_hits,
            boundary.num_failed)
        policy = self.policies[agent_id]
        if policy is not None and boundary.policy_flat is not None:
            policy.set_flat(np.asarray(boundary.policy_flat))
        updater = self.updaters[agent_id]
        if updater is not None and boundary.opt_state is not None:
            updater.optimizer.restore_state(boundary.opt_state)
        if updater is not None and boundary.lr is not None:
            updater.optimizer.lr = boundary.lr
        self._resume[agent_id] = boundary

    # -- checkpointing --------------------------------------------------
    def _maybe_record_checkpoint(self) -> None:
        """Record-count trigger (fires from :class:`RecordCheckpointHook`
        at an iteration start).

        The capture itself is *deferred* to a fresh zero-delay sim
        process rather than taken inline: the triggering agent's hook
        can run inside the zero-duration window after a sync barrier
        released but before the other woken agents executed their own
        iteration starts — their boundaries would still point at the
        round the exported exchange state has already applied, and the
        resume would push that round twice.  A process scheduled *now*
        gets a later sequence number than every already-queued wakeup,
        so by the time it runs each agent is parked at a yield point
        with a fresh boundary — exactly the state the interval
        checkpoint clock observes.
        """
        every = self.config.checkpoint_every_records
        if every is None or self._record_ckpt_pending:
            return
        if len(self.records) - self._records_at_ckpt < every:
            return
        self._record_ckpt_pending = True
        self.sim.process(self._record_checkpoint_proc(), name="record-ckpt")

    def _record_checkpoint_proc(self):
        try:
            # re-check: a capture scheduled just before another trigger
            # (or the interval clock) may have already covered the gap
            every = self.config.checkpoint_every_records
            if len(self.records) - self._records_at_ckpt >= every:
                self._capture_checkpoint()
        finally:
            self._record_ckpt_pending = False
        return
        yield   # pragma: no cover — generator so sim.process can run it

    def _checkpoint_clock(self):
        interval = self.config.checkpoint_interval
        try:
            while True:
                yield Timeout(interval)
                self._capture_checkpoint()
        except Interrupt:
            return

    def _capture_checkpoint(self) -> SearchCheckpoint:
        """Snapshot the search into a :class:`SearchCheckpoint`."""
        cfg = self.config
        agents = []
        for agent_id in range(cfg.allocation.num_agents):
            ev = self.evaluators[agent_id]
            if agent_id in self._done_agents:
                entries = (ev.cache.snapshot()
                           if ev.cache is not None else [])
                agents.append(AgentCheckpoint(
                    agent_id, done=True,
                    converged=self._done_agents[agent_id],
                    boundary=None, cache_entries=entries,
                    traj_digest=self._digests.get(agent_id)))
                continue
            boundary = self._boundaries.get(agent_id)
            if boundary is None:
                # agent spawned but still in its startup stagger: resume
                # will simply start it fresh (deterministically equal)
                agents.append(AgentCheckpoint(
                    agent_id, done=False, converged=False, boundary=None))
                continue
            entries = (ev.cache.snapshot(boundary.cache_len)
                       if ev.cache is not None else [])
            agents.append(AgentCheckpoint(
                agent_id, done=False, converged=False,
                boundary=boundary, cache_entries=entries))

        # process-backend poison records survive the restart, so a
        # resumed search never re-feeds a known worker-killer to the
        # fresh pool (empty for every other backend)
        quarantine = {}
        for agent_id in range(cfg.allocation.num_agents):
            ev = self.evaluators[agent_id]
            if isinstance(ev, ProcessEvaluator) and ev.quarantined:
                quarantine[agent_id] = ev.quarantine_snapshot()

        ckpt = SearchCheckpoint(
            time=self.sim.now, seed=cfg.seed, method=cfg.method,
            space_name=self.space.name,
            num_agents=cfg.allocation.num_agents,
            wall_time=cfg.wall_time,
            records=list(self.records), agents=agents,
            ps_state=self.exchange.export_state(),
            converged_agents=self._converged_agents,
            failed_agents=list(self._failed_agents),
            agent_restarts=dict(self._restarts),
            agent_rollbacks=dict(self._rollbacks),
            quarantine=quarantine)
        self.checkpoints.append(ckpt)
        self._records_at_ckpt = len(self.records)
        if cfg.checkpoint_path is not None:
            ckpt.save(cfg.checkpoint_path)
        if self.journal is not None:
            self.journal.save_checkpoint(ckpt)
        emit(self.sink, CHECKPOINT, self.sim.now,
             num_records=len(ckpt.records))
        return ckpt

    def _validate_checkpoint(self, ckpt: SearchCheckpoint) -> None:
        cfg = self.config
        if ckpt.num_agents != cfg.allocation.num_agents:
            raise ValueError(
                f"checkpoint has {ckpt.num_agents} agents, config has "
                f"{cfg.allocation.num_agents}")
        if ckpt.method != cfg.method:
            raise ValueError(
                f"checkpoint method {ckpt.method!r} != config "
                f"{cfg.method!r}")
        if ckpt.space_name != self.space.name:
            raise ValueError(
                f"checkpoint space {ckpt.space_name!r} != "
                f"{self.space.name!r}")
        if ckpt.seed != cfg.seed:
            raise ValueError(
                f"checkpoint seed {ckpt.seed} != config seed {cfg.seed}; "
                f"deterministic resume requires the same seed")

    def _apply_checkpoint(self, ckpt: SearchCheckpoint) -> None:
        self._validate_checkpoint(ckpt)
        # drop records a resuming agent appended past its boundary (a
        # sync agent parked at the barrier has already recorded its
        # in-flight iteration); the replay re-records them
        budget = {a.agent_id: a.boundary.num_records for a in ckpt.agents
                  if not a.done and a.boundary is not None}
        self.records = []
        for rec in ckpt.records:
            if rec.agent_id in budget:
                if budget[rec.agent_id] <= 0:
                    continue
                budget[rec.agent_id] -= 1
            self.records.append(rec)
        # shared-history proposers re-fold their state from the kept
        # records; each resuming agent's first proposal then reads up to
        # its boundary's proposer_seen watermark
        self.proposer.rebuild(self.records)
        self._converged_agents = ckpt.converged_agents
        self._failed_agents = [tuple(fa) for fa in ckpt.failed_agents]
        self._restarts = dict(ckpt.agent_restarts)
        self._rollbacks = dict(ckpt.agent_rollbacks)
        for agent_id, entries in ckpt.quarantine.items():
            ev = self.evaluators[agent_id]
            if isinstance(ev, ProcessEvaluator):
                ev.restore_quarantine(entries)
        for agent in ckpt.agents:
            ev = self.evaluators[agent.agent_id]
            if ev.cache is not None and agent.cache_entries:
                ev.cache.restore(agent.cache_entries)
            if agent.done:
                self._done_agents[agent.agent_id] = agent.converged
                if agent.traj_digest:
                    self._digests[agent.agent_id] = agent.traj_digest
                continue
            if agent.boundary is None:
                continue            # starts fresh, deterministically
            self._restore_agent_state(agent.agent_id, agent.boundary)
        self.exchange.restore_state(ckpt.ps_state)
        self._records_at_ckpt = len(self.records)


def run_search(space: Structure, reward_model: RewardModel,
               config: SearchConfig | None = None) -> SearchResult:
    """Convenience one-call search run."""
    return NasSearch(space, reward_model, config).run()


def resume_search(space: Structure, reward_model: RewardModel,
                  checkpoint: SearchCheckpoint,
                  config: SearchConfig | None = None) -> SearchResult:
    """Resume a checkpointed search and run it to completion."""
    return NasSearch(space, reward_model, config,
                     resume_from=checkpoint).run()
