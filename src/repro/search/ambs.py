"""Asynchronous model-based search (AMBS) on the proposer seam.

DeepHyper-style surrogate search: fit a cheap model on every
(architecture, reward) pair observed so far, score a candidate pool
with an optimistic acquisition, and propose the best candidates.  The
pieces:

* **Encoding** — each action row becomes a one-hot vector per decision
  plus an intercept column, so the surrogate is linear in option
  *membership* rather than in the (meaningless) integer option index.
* **Surrogate** — a bootstrap ensemble of ridge regressions.  Each
  member solves ``(XᵀX + λI) w = Xᵀy`` on a resampled subset; the
  ensemble spread is the uncertainty estimate.  Closed-form ``solve``
  keeps fits deterministic and dependency-free.
* **Acquisition** — upper confidence bound on reward,
  ``mean + kappa·std`` (equivalently LCB on the negated objective, the
  DeepHyper convention); maximized over a candidate pool of uniform
  rows mixed with mutations of the best architectures seen.
* **Constant liar** — a batch is proposed slot by slot: after each
  pick, a "lie" reward (min/mean/max of the observed rewards, per
  ``ambs_liar``) is appended to the fit set so the remaining slots
  spread out instead of proposing the same argmax B times.

The proposer reads only the shared observation history (through the
boundary watermark on resume) and ``loop.rng``, so same-seed runs and
checkpoint resumes are bit-identical like every other method.
"""

from __future__ import annotations

import numpy as np

from .proposer import HistoryProposer, mutate_choices

__all__ = ["AmbsProposer", "encode_rows", "RidgeEnsemble"]

#: cap on how much history one fit consumes (keeps per-iteration fit
#: cost flat on long runs; the newest observations matter most)
_FIT_WINDOW = 2048
#: ridge regularizer — small enough not to bias, large enough that the
#: normal equations stay well-conditioned on tiny warm-up fit sets
_RIDGE_LAMBDA = 1e-2


def encode_rows(rows: np.ndarray, dims: np.ndarray) -> np.ndarray:
    """One-hot encode integer action rows, plus an intercept column.

    ``rows`` is ``(N, T)`` with ``rows[:, t] < dims[t]``; the result is
    ``(N, sum(dims) + 1)`` float64.
    """
    rows = np.asarray(rows, dtype=np.int64)
    n = rows.shape[0]
    width = int(np.sum(dims)) + 1
    out = np.zeros((n, width), dtype=np.float64)
    offset = 0
    for t, d in enumerate(dims):
        out[np.arange(n), offset + rows[:, t]] = 1.0
        offset += int(d)
    out[:, -1] = 1.0
    return out


class RidgeEnsemble:
    """Bootstrap ensemble of closed-form ridge regressions."""

    def __init__(self, members: int, lam: float = _RIDGE_LAMBDA) -> None:
        self.members = members
        self.lam = lam
        self._weights: np.ndarray | None = None   # (members, D)

    def fit(self, x: np.ndarray, y: np.ndarray,
            rng: np.random.Generator) -> None:
        n, d = x.shape
        eye = self.lam * np.eye(d)
        weights = np.empty((self.members, d), dtype=np.float64)
        for m in range(self.members):
            idx = rng.integers(0, n, size=n)
            xm, ym = x[idx], y[idx]
            weights[m] = np.linalg.solve(xm.T @ xm + eye, xm.T @ ym)
        self._weights = weights

    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-row ensemble ``(mean, std)`` over the candidate matrix."""
        preds = x @ self._weights.T            # (N, members)
        return preds.mean(axis=1), preds.std(axis=1)


class AmbsProposer(HistoryProposer):
    """Surrogate-guided proposal with constant-liar batching."""

    name = "ambs"

    def __init__(self, space, *, warmup: int, candidates: int,
                 kappa: float, liar: str, ensemble: int) -> None:
        super().__init__(space)
        self.warmup = warmup
        self.candidates = candidates
        self.kappa = kappa
        self.liar = liar
        self.ensemble = ensemble

    @classmethod
    def build(cls, config, space, exchange):
        return cls(space, warmup=config.ambs_warmup,
                   candidates=config.ambs_candidates,
                   kappa=config.ambs_kappa, liar=config.ambs_liar,
                   ensemble=config.ambs_ensemble)

    def propose(self, loop, seen=None):
        obs = self.history(seen)[-_FIT_WINDOW:]
        if len(obs) < self.warmup:
            return loop.rng.integers(0, self.dims,
                                     size=(loop.batch, len(self.dims)))
        rows = np.array([c for c, _ in obs], dtype=np.int64)
        # failed evals report NaN reward; score them as worst-case so
        # the surrogate steers away instead of poisoning the fit
        rewards = np.nan_to_num(np.array([r for _, r in obs]), nan=-1.0)
        picks = np.empty((loop.batch, len(self.dims)), dtype=np.int64)
        lie = {"min": np.min, "mean": np.mean,
               "max": np.max}[self.liar](rewards)
        for slot in range(loop.batch):
            picks[slot] = self._propose_one(loop.rng, rows, rewards)
            rows = np.vstack([rows, picks[slot]])
            rewards = np.append(rewards, lie)
        return picks

    def _propose_one(self, rng, rows, rewards):
        """Fit on (rows, rewards) and return the acquisition argmax."""
        model = RidgeEnsemble(self.ensemble)
        model.fit(encode_rows(rows, self.dims), rewards, rng)
        pool = self._candidate_pool(rng, rows, rewards)
        mean, std = model.predict(encode_rows(pool, self.dims))
        return pool[int(np.argmax(mean + self.kappa * std))]

    def _candidate_pool(self, rng, rows, rewards):
        """¾ uniform exploration rows, ¼ mutations of the top archs."""
        n_mut = self.candidates // 4
        pool = rng.integers(0, self.dims,
                            size=(self.candidates - n_mut, len(self.dims)))
        top = np.argsort(rewards)[::-1][:max(1, n_mut)]
        mutants = np.array([
            mutate_choices(self.space, rows[top[i % len(top)]], rng)
            for i in range(n_mut)], dtype=np.int64).reshape(n_mut, -1)
        return np.vstack([pool, mutants]) if n_mut else pool
