"""Simulated Balsam workflow service (§4, Fig. 3).

The real deployment runs a Balsam service (Django + PostgreSQL) on a
dedicated node; agents submit reward-estimation tasks through the
Evaluator API, and a pilot-job *launcher* continually dispatches queued
tasks onto idle worker nodes.

Here the service is a job database over the discrete-event kernel.  Each
submitted job becomes a pilot process: it waits (FIFO) for a worker node
from the shared :class:`~repro.hpc.cluster.Cluster`, holds it for the
modelled task duration, then releases it and fires its completion event.
A small submission latency models the database round trip.

Cache hits complete instantly without touching the cluster — agents keep
agent-local caches (§4) — which is what drives the utilization decay as
a search converges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hpc.cluster import Cluster
from ..hpc.sim import AllOf, Event, Simulator, Timeout
from ..nas.arch import Architecture
from ..rewards.base import EvalResult, RewardModel
from .base import EvalRecord, Evaluator
from .cache import EvalCache

__all__ = ["BalsamJob", "BalsamService", "BalsamEvaluator"]


@dataclass
class BalsamJob:
    """One row of the job database."""

    job_id: int
    agent_id: int
    arch: Architecture
    result: EvalResult
    submit_time: float
    start_time: float = -1.0
    end_time: float = -1.0
    state: str = "CREATED"       # CREATED -> RUNNING -> FINISHED
    done: Event | None = field(default=None, repr=False)


class BalsamService:
    """Shared job database + launcher over one cluster."""

    def __init__(self, sim: Simulator, cluster: Cluster,
                 submit_latency: float = 0.5) -> None:
        self.sim = sim
        self.cluster = cluster
        self.submit_latency = submit_latency
        self.jobs: list[BalsamJob] = []

    def submit(self, agent_id: int, arch: Architecture,
               result: EvalResult) -> BalsamJob:
        """Create a job and spawn its pilot process; returns the job, whose
        ``done`` event fires at completion."""
        job = BalsamJob(len(self.jobs), agent_id, arch, result,
                        self.sim.now, done=self.sim.event())
        self.jobs.append(job)
        self.sim.process(self._pilot(job), name=f"job{job.job_id}")
        return job

    def _pilot(self, job: BalsamJob):
        yield Timeout(self.submit_latency)
        yield self.cluster.acquire()
        job.state = "RUNNING"
        job.start_time = self.sim.now
        yield Timeout(job.result.duration)
        self.cluster.release()
        job.state = "FINISHED"
        job.end_time = self.sim.now
        job.done.succeed(job)

    # -- monitoring (the paper's Balsam utilization inference) -----------
    def utilization_trace(self, end_time: float, bin_width: float = 60.0):
        return self.cluster.utilization_trace(end_time, bin_width)

    @property
    def num_finished(self) -> int:
        return sum(1 for j in self.jobs if j.state == "FINISHED")


class BalsamEvaluator(Evaluator):
    """Per-agent evaluator backed by the shared Balsam service.

    ``add_eval_batch`` returns an event that fires when the whole batch
    has finished — the per-agent batch synchronization the paper notes
    ("the estimation of M rewards per agent was blocking").
    """

    def __init__(self, service: BalsamService, reward_model: RewardModel,
                 agent_id: int, use_cache: bool = True) -> None:
        super().__init__(agent_id)
        self.service = service
        self.reward_model = reward_model
        self.cache = EvalCache() if use_cache else None
        self._finished: list[EvalRecord] = []
        self.last_batch_all_cached = False

    def add_eval_batch(self, archs: list[Architecture]) -> Event:
        sim = self.service.sim
        pending: list[Event] = []
        all_cached = True
        for arch in archs:
            self.num_submitted += 1
            cached = self.cache.get(arch) if self.cache is not None else None
            if cached is not None:
                self.num_cache_hits += 1
                self._finished.append(EvalRecord(
                    arch, cached, self.agent_id, sim.now, sim.now, sim.now,
                    cached=True))
                continue
            all_cached = False
            result = self.reward_model.evaluate(arch, agent_seed=self.agent_id)
            job = self.service.submit(self.agent_id, arch, result)
            pending.append(job.done)
        self.last_batch_all_cached = all_cached and bool(archs)

        batch_done = sim.event()

        def finisher():
            jobs = yield AllOf(pending)
            for job in jobs:
                if self.cache is not None:
                    self.cache.put(job.arch, job.result)
                self._finished.append(EvalRecord(
                    job.arch, job.result, self.agent_id, job.submit_time,
                    job.start_time, job.end_time))
            batch_done.succeed()

        sim.process(finisher(), name=f"agent{self.agent_id}.batch")
        return batch_done

    def get_finished_evals(self) -> list[EvalRecord]:
        out, self._finished = self._finished, []
        return out
