"""Simulated Balsam workflow service (§4, Fig. 3).

The real deployment runs a Balsam service (Django + PostgreSQL) on a
dedicated node; agents submit reward-estimation tasks through the
Evaluator API, and a pilot-job *launcher* continually dispatches queued
tasks onto idle worker nodes.

Here the service is a job database over the discrete-event kernel.  Each
submitted job becomes a pilot process: it waits (FIFO) for a worker node
from the shared :class:`~repro.hpc.cluster.Cluster`, holds it for the
modelled task duration, then releases it and fires its completion event.
A small submission latency models the database round trip.

Cache hits complete instantly without touching the cluster — agents keep
agent-local caches (§4) — which is what drives the utilization decay as
a search converges.

Fault tolerance mirrors the real Balsam job lifecycle.  A job whose
attempt crashes (task death) or whose node fails under it (preemption
``Interrupt``) enters ``RUN_ERROR``; with retries remaining it becomes
``RESTART_ENABLED`` and re-queues after a capped exponential backoff;
after ``max_retries`` restarts it is ``FAILED`` and its completion
event still fires — the evaluator surfaces the paper's failure reward
(−1) instead of hanging the agent's batch barrier.  A job abandoned by
its batch deadline is ``RUN_TIMEOUT``.  With no
:class:`~repro.hpc.faults.FaultInjector` configured, none of these
paths execute and behavior is identical to the failure-free service.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..events import EventSink
from ..hpc.cluster import Cluster
from ..hpc.faults import FaultInjector
from ..hpc.sim import AllOf, Event, Interrupt, Process, Simulator, Timeout
from ..nas.arch import Architecture
from ..rewards.base import EvalResult, RewardModel
from .broker import EvalBroker, RewardModelBackend

__all__ = ["BalsamJob", "BalsamService", "BalsamEvaluator"]

#: terminal job states whose reward is surfaced as FAILURE_REWARD
_FAILURE_STATES = ("FAILED", "RUN_TIMEOUT")


@dataclass
class BalsamJob:
    """One row of the job database.

    State machine (matching Balsam's lifecycle)::

        CREATED -> RUNNING -> FINISHED
                      |-> RUN_ERROR -> RESTART_ENABLED -> RUNNING ...
                      |                       `-> FAILED (retries gone)
                      `-> RUN_TIMEOUT (abandoned by its batch deadline)
    """

    job_id: int
    agent_id: int
    arch: Architecture
    result: EvalResult
    submit_time: float
    start_time: float = -1.0
    end_time: float = -1.0
    state: str = "CREATED"
    done: Event | None = field(default=None, repr=False)
    num_retries: int = 0
    attempts: int = 0
    error: str = ""
    proc: Process | None = field(default=None, repr=False)
    #: (start, end) of every completed or preempted run attempt
    run_log: list = field(default_factory=list, repr=False)

    @property
    def failed(self) -> bool:
        return self.state in _FAILURE_STATES


class BalsamService:
    """Shared job database + launcher over one cluster.

    ``faults`` plugs in a :class:`~repro.hpc.faults.FaultInjector`
    (node failures are injected into the cluster separately via
    ``injector.attach``); ``max_retries`` / ``retry_backoff`` /
    ``retry_backoff_cap`` set the restart policy.  All default to the
    fault-free behavior.
    """

    def __init__(self, sim: Simulator, cluster: Cluster,
                 submit_latency: float = 0.5,
                 faults: FaultInjector | None = None,
                 max_retries: int = 3, retry_backoff: float = 5.0,
                 retry_backoff_cap: float = 120.0) -> None:
        if max_retries < 0 or retry_backoff < 0 or retry_backoff_cap < 0:
            raise ValueError("retry policy values must be non-negative")
        self.sim = sim
        self.cluster = cluster
        self.submit_latency = submit_latency
        self.faults = faults
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        self.jobs: list[BalsamJob] = []

    def submit(self, agent_id: int, arch: Architecture,
               result: EvalResult) -> BalsamJob:
        """Create a job and spawn its pilot process; returns the job, whose
        ``done`` event fires at completion."""
        job = BalsamJob(len(self.jobs), agent_id, arch, result,
                        self.sim.now, done=self.sim.event())
        self.jobs.append(job)
        job.proc = self.sim.process(self._pilot(job), name=f"job{job.job_id}")
        return job

    def _pilot(self, job: BalsamJob):
        yield Timeout(self.submit_latency)
        while True:
            job.attempts += 1
            if self.faults is not None:
                # service outage: the launcher cannot dispatch until the
                # window ends
                stall = self.faults.outage_delay(self.sim.now)
                if stall > 0.0:
                    yield Timeout(stall)
            fault = (self.faults.job_fault(job.job_id, job.attempts)
                     if self.faults is not None else None)
            try:
                yield self.cluster.acquire(holder=job.proc)
                if job.failed:
                    # batch deadline expired while queued; give the node back
                    self.cluster.release(holder=job.proc)
                    return
                job.state = "RUNNING"
                job.start_time = self.sim.now
                duration = job.result.duration
                if fault is not None:
                    duration *= fault.slowdown
                if fault is not None and fault.crashes:
                    # the task dies partway through; the node survives
                    yield Timeout(duration * fault.crash_frac)
                    self.faults.num_job_crashes += 1
                    job.run_log.append((job.start_time, self.sim.now))
                    job.start_time = -1.0
                    self.cluster.release(holder=job.proc)
                    if job.failed:
                        return          # abandoned mid-run by its deadline
                    job.state = "RUN_ERROR"
                    job.error = "task crashed"
                else:
                    yield Timeout(duration)
                    job.run_log.append((job.start_time, self.sim.now))
                    self.cluster.release(holder=job.proc)
                    if job.failed:
                        return          # abandoned mid-run by its deadline
                    job.state = "FINISHED"
                    job.end_time = self.sim.now
                    job.done.succeed(job)
                    return
            except Interrupt as intr:
                # the node died under us: the lease is already revoked,
                # so there is nothing to release.  start_time >= 0 only
                # while the current attempt is actually running (it is
                # reset whenever an attempt ends), so a pilot preempted
                # between lease grant and resume logs no bogus interval
                if job.start_time >= 0:
                    job.run_log.append((job.start_time, self.sim.now))
                    job.start_time = -1.0
                if job.failed:
                    return          # deadline had already abandoned it
                job.state = "RUN_ERROR"
                job.error = f"node failure ({intr.cause})"
            if job.num_retries >= self.max_retries:
                job.state = "FAILED"
                job.end_time = self.sim.now
                job.done.succeed(job)
                return
            job.num_retries += 1
            job.state = "RESTART_ENABLED"
            backoff = min(self.retry_backoff * 2.0 ** (job.num_retries - 1),
                          self.retry_backoff_cap)
            yield Timeout(backoff)

    # -- monitoring (the paper's Balsam utilization inference) -----------
    def utilization_trace(self, end_time: float, bin_width: float = 60.0):
        return self.cluster.utilization_trace(end_time, bin_width)

    @property
    def num_finished(self) -> int:
        return sum(1 for j in self.jobs if j.state == "FINISHED")

    @property
    def num_failed(self) -> int:
        return sum(1 for j in self.jobs if j.failed)

    @property
    def num_restarts(self) -> int:
        return sum(j.num_retries for j in self.jobs)


class BalsamEvaluator(EvalBroker):
    """Per-agent evaluator backed by the shared Balsam service.

    ``add_eval_batch`` returns an event that fires when the whole batch
    has finished — the per-agent batch synchronization the paper notes
    ("the estimation of M rewards per agent was blocking").

    ``batch_deadline`` bounds that barrier: any job still unfinished
    that many virtual seconds after submission is abandoned
    (``RUN_TIMEOUT``) and surfaced with ``FAILURE_REWARD``, so a lost
    job can never hang the agent.  ``None`` (default) waits forever,
    which is safe whenever a fault-free service is used.

    All cache / counter / failure bookkeeping lives in
    :class:`~repro.evaluator.broker.EvalBroker` (with the simulator as
    its clock); this class only owns job submission and the
    finisher/watchdog processes.
    """

    def __init__(self, service: BalsamService, reward_model: RewardModel,
                 agent_id: int, use_cache: bool = True,
                 batch_deadline: float | None = None,
                 sink: EventSink | None = None) -> None:
        super().__init__(agent_id=agent_id, use_cache=use_cache,
                         clock=lambda: service.sim.now, sink=sink,
                         plan_source=reward_model)
        if batch_deadline is not None and batch_deadline <= 0:
            raise ValueError("batch_deadline must be positive")
        self.service = service
        self.reward_model = reward_model
        self.backend = RewardModelBackend(reward_model, agent_id)
        self.batch_deadline = batch_deadline

    def add_eval_batch(self, archs: list[Architecture]) -> Event:
        sim = self.service.sim
        self._begin_batch(archs)
        jobs: list[BalsamJob] = []
        all_cached = True
        for arch in archs:
            self.num_submitted += 1
            if self._cache_hit(arch, sim.now):
                continue
            all_cached = False
            result = self.backend.execute(arch)
            jobs.append(self.service.submit(self.agent_id, arch, result))
        # NOTE: an *empty* batch is reported as not-all-cached — absence
        # of submissions is no evidence of cache convergence
        self.last_batch_all_cached = all_cached and bool(archs)

        batch_done = sim.event()
        if not jobs:
            # empty or fully cached batch: nothing to wait for — succeed
            # immediately instead of spawning a finisher over AllOf([])
            batch_done.succeed()
            return batch_done

        def finisher():
            done_jobs = yield AllOf([job.done for job in jobs])
            for job in done_jobs:
                if job.failed:
                    # retries exhausted or batch deadline hit: surface
                    # the paper's failure reward
                    start = (job.start_time if job.start_time >= 0
                             else job.submit_time)
                    self._fail(job.arch, job.result.duration,
                               job.result.params, job.submit_time, start,
                               sim.now)
                    continue
                self._complete(job.arch, job.result, job.submit_time,
                               job.start_time, job.end_time)
            batch_done.succeed()

        sim.process(finisher(), name=f"agent{self.agent_id}.batch")

        if self.batch_deadline is not None:
            def watchdog():
                yield Timeout(self.batch_deadline)
                for job in jobs:
                    if not job.done.triggered:
                        job.state = "RUN_TIMEOUT"
                        job.error = "batch deadline exceeded"
                        job.end_time = sim.now
                        job.done.succeed(job)

            sim.process(watchdog(), name=f"agent{self.agent_id}.deadline")
        return batch_done
