"""Thread-pool evaluator backend.

§4 describes evaluator backends "ranging from lightweight threads to
massively parallel jobs using a workflow system".  This is the
lightweight-threads end: reward estimations run in a
ThreadPoolExecutor, ``get_finished_evals`` is non-blocking (it drains
whatever completed since the last call), and ``wait_all`` provides the
per-agent batch barrier the search loop needs.

numpy releases the GIL inside BLAS kernels, so real-training reward
models get genuine overlap on multi-core machines.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor, wait

from ..nas.arch import Architecture
from ..rewards.base import EvalResult, RewardModel
from .base import EvalRecord, Evaluator
from .cache import EvalCache

__all__ = ["ThreadEvaluator"]


class ThreadEvaluator(Evaluator):
    def __init__(self, reward_model: RewardModel, agent_id: int = 0,
                 max_workers: int = 4, use_cache: bool = True,
                 clock=time.monotonic) -> None:
        super().__init__(agent_id)
        self.reward_model = reward_model
        self.cache = EvalCache() if use_cache else None
        self.clock = clock
        self._pool = ThreadPoolExecutor(max_workers=max_workers)
        self._pending: list[tuple[Architecture, float, Future]] = []
        self._finished: list[EvalRecord] = []

    def add_eval_batch(self, archs: list[Architecture]) -> None:
        for arch in archs:
            submit = self.clock()
            self.num_submitted += 1
            cached = self.cache.get(arch) if self.cache is not None else None
            if cached is not None:
                self.num_cache_hits += 1
                self._finished.append(EvalRecord(
                    arch, cached, self.agent_id, submit, submit,
                    self.clock(), cached=True))
                continue
            future = self._pool.submit(self.reward_model.evaluate, arch,
                                       self.agent_id)
            self._pending.append((arch, submit, future))

    def _drain(self) -> None:
        still_pending = []
        for arch, submit, future in self._pending:
            if future.done():
                try:
                    result = future.result()
                except Exception:       # noqa: BLE001 — worker died; any
                    # reward-model exception becomes a failure record
                    # instead of propagating into the caller's drain loop
                    self.num_failed += 1
                    result = EvalResult(RewardModel.FAILURE_REWARD,
                                        max(0.0, self.clock() - submit), 0)
                    self._finished.append(EvalRecord(
                        arch, result, self.agent_id, submit, submit,
                        self.clock()))
                    continue
                if self.cache is not None:
                    self.cache.put(arch, result)
                self._finished.append(EvalRecord(
                    arch, result, self.agent_id, submit, submit,
                    self.clock()))
            else:
                still_pending.append((arch, submit, future))
        self._pending = still_pending

    def get_finished_evals(self) -> list[EvalRecord]:
        self._drain()
        out, self._finished = self._finished, []
        return out

    def wait_all(self, timeout: float | None = None) -> None:
        """Block until every submitted estimation has completed."""
        wait([f for _, _, f in self._pending], timeout=timeout)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
