"""Thread-pool evaluator backend.

§4 describes evaluator backends "ranging from lightweight threads to
massively parallel jobs using a workflow system".  This is the
lightweight-threads end: reward estimations run in a
ThreadPoolExecutor, ``get_finished_evals`` is non-blocking (it drains
whatever completed since the last call), and ``wait_all`` provides the
per-agent batch barrier the search loop needs.

numpy releases the GIL inside BLAS kernels, so real-training reward
models get genuine overlap on multi-core machines.

All cache / counter / failure bookkeeping lives in
:class:`~repro.evaluator.broker.EvalBroker`; this class only owns the
pool and the pending-future set.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor, wait

from ..events import EventSink
from ..nas.arch import Architecture
from ..rewards.base import RewardModel
from .broker import EvalBroker, RewardModelBackend

__all__ = ["ThreadEvaluator"]


class ThreadEvaluator(EvalBroker):
    def __init__(self, reward_model: RewardModel, agent_id: int = 0,
                 max_workers: int = 4, use_cache: bool = True,
                 clock=time.monotonic, sink: EventSink | None = None) -> None:
        super().__init__(agent_id=agent_id, use_cache=use_cache,
                         clock=clock, sink=sink, plan_source=reward_model)
        self.reward_model = reward_model
        self.backend = RewardModelBackend(reward_model, agent_id)
        self._pool = ThreadPoolExecutor(max_workers=max_workers)
        self._pending: list[tuple[Architecture, float, Future]] = []

    def add_eval_batch(self, archs: list[Architecture]) -> None:
        self._begin_batch(archs)
        all_cached = True
        for arch in archs:
            submit = self.clock()
            self.num_submitted += 1
            if self._replay_hit(arch, submit):
                all_cached = False
                continue
            if self._cache_hit(arch, submit):
                continue
            all_cached = False
            future = self._pool.submit(self.backend.execute, arch)
            self._pending.append((arch, submit, future))
        self.last_batch_all_cached = all_cached and bool(archs)

    def _poll(self) -> None:
        still_pending = []
        for arch, submit, future in self._pending:
            if not future.done():
                still_pending.append((arch, submit, future))
                continue
            try:
                result = future.result()
            except Exception:   # noqa: BLE001 — worker died; any
                # reward-model exception becomes a failure record
                # instead of propagating into the caller's drain loop
                self._fail(arch, max(0.0, self.clock() - submit), 0,
                           submit, submit, self.clock())
                continue
            self._complete(arch, result, submit, submit, self.clock())
        self._pending = still_pending

    def wait_all(self, timeout: float | None = None) -> None:
        """Block until every submitted estimation has completed."""
        wait([f for _, _, f in self._pending], timeout=timeout)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)
