"""Evaluator API (§4).

The paper's evaluator exposes a three-function interface that "enforces a
complete separation of concerns between the search and the backend":

* ``add_eval_batch(architectures)`` — submit reward-estimation tasks;
* ``get_finished_evals()`` — non-blocking fetch of newly completed
  estimations;
* the evaluation cache — agent-local, so repeated architectures return
  their previous reward without consuming worker nodes.

Backends range from in-process serial evaluation (laptop) to the
simulated Balsam service (leadership-class runs); a single search code
runs on either.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nas.arch import Architecture
from ..rewards.base import EvalResult

__all__ = ["EvalRecord", "Evaluator"]


@dataclass(frozen=True)
class EvalRecord:
    """A finished reward estimation, as returned by ``get_finished_evals``."""

    arch: Architecture
    result: EvalResult
    agent_id: int
    submit_time: float
    start_time: float
    end_time: float
    cached: bool = False

    @property
    def reward(self) -> float:
        return self.result.reward


class Evaluator:
    """Abstract evaluator; see module docstring for the contract.

    ``num_failed`` counts evaluations that could not produce a real
    reward — a worker exception, a job whose retries were exhausted, or
    a batch-deadline abandonment.  Backends surface these as
    ``FAILURE_REWARD`` records rather than raising into the search
    loop, so the stat is the only trace the caller sees.
    """

    def __init__(self, agent_id: int = 0) -> None:
        self.agent_id = agent_id
        self.num_submitted = 0
        self.num_cache_hits = 0
        self.num_failed = 0
        #: True iff the most recent non-empty batch was answered
        #: entirely from the cache (drives convergence detection, §5.1)
        self.last_batch_all_cached = False

    def add_eval_batch(self, archs: list[Architecture]):
        raise NotImplementedError

    def get_finished_evals(self) -> list[EvalRecord]:
        raise NotImplementedError

    # -- uniform lifecycle --------------------------------------------
    # Backends with nothing in flight inherit these as no-ops, so every
    # evaluator is drop-in interchangeable behind the broker:
    #     with make_evaluator() as ev:
    #         ev.add_eval_batch(archs); ev.wait_all()
    def wait_all(self, timeout: float | None = None) -> None:
        """Block until every submitted estimation has completed."""

    def shutdown(self) -> None:
        """Release backend resources (idempotent)."""

    def __enter__(self) -> "Evaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
