"""Agent-local evaluation cache.

Each agent keeps its own cache of evaluated architectures ("a global
cache ... is not maintained because that would nullify the benefit of
agent-specific random weight initialization", §4).  A cache hit returns
the stored result instantly without occupying a worker node — the
mechanism behind the utilization decay of Figs. 5/6/9 and the
convergence-stop of §5.1 (the search halts when every agent only
generates cache hits).
"""

from __future__ import annotations

from ..nas.arch import Architecture
from ..nas.plancache import exact_key
from ..rewards.base import EvalResult

__all__ = ["EvalCache"]


class EvalCache:
    """Maps architecture keys to results for one agent.

    Keys are the *exact* ``(space, choices)`` keys from
    :func:`repro.nas.plancache.exact_key` — deliberately not the
    isomorphism signature: the same structure evaluated from a different
    action sequence draws different agent-specific weights, so exact
    keying is load-bearing for the paper's protocol (the signature-keyed
    store is the bench table, :mod:`repro.bench`).
    """

    def __init__(self) -> None:
        self._store: dict[tuple, EvalResult] = {}
        self.hits = 0
        self.misses = 0

    def get(self, arch: Architecture) -> EvalResult | None:
        result = self._store.get(exact_key(arch))
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, arch: Architecture, result: EvalResult) -> None:
        self._store[exact_key(arch)] = result

    def __contains__(self, arch: Architecture) -> bool:
        return exact_key(arch) in self._store

    # -- checkpoint support -------------------------------------------
    def snapshot(self, limit: int | None = None) -> list:
        """First ``limit`` (key, result) entries in insertion order.

        The store is insertion-ordered and append-only (re-putting a key
        stores an identical result), so "the cache as of iteration N" is
        exactly its first ``cache_len(N)`` entries — which is what search
        checkpoints record instead of copying the dict every iteration.
        """
        items = list(self._store.items())
        return items if limit is None else items[:limit]

    def restore(self, entries: list, hits: int | None = None,
                misses: int | None = None) -> None:
        """Replace the store with checkpointed (key, result) entries.

        ``hits``/``misses`` restore the lookup tally alongside the
        store; left ``None`` the counters are untouched (they used to be
        silently dropped on checkpoint resume — the broker now passes
        them so resumed caches report the same hit rate as the original
        run).
        """
        self._store = dict(entries)
        if hits is not None:
            self.hits = int(hits)
        if misses is not None:
            self.misses = int(misses)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def unique_architectures(self) -> int:
        return len(self._store)
