"""In-process evaluator backend (the "laptop" end of the scale).

Evaluations run immediately and synchronously on ``add_eval_batch``;
``get_finished_evals`` drains the completion queue.  Used by the
examples and by real-training searches, where the reward model's
duration is genuine wall time.

All cache / counter / failure bookkeeping lives in
:class:`~repro.evaluator.broker.EvalBroker`; this class is only the
dispatch policy (run it now, inline).  A reward-model exception becomes
a ``FAILURE_REWARD`` record — the same conversion every other backend
applies — so serial runs are drop-in interchangeable behind the broker.
"""

from __future__ import annotations

import time

from ..events import EventSink
from ..nas.arch import Architecture
from ..rewards.base import RewardModel
from .broker import EvalBroker, RewardModelBackend

__all__ = ["SerialEvaluator"]


class SerialEvaluator(EvalBroker):
    def __init__(self, reward_model: RewardModel, agent_id: int = 0,
                 use_cache: bool = True, clock=time.monotonic,
                 sink: EventSink | None = None) -> None:
        super().__init__(agent_id=agent_id, use_cache=use_cache,
                         clock=clock, sink=sink, plan_source=reward_model)
        self.reward_model = reward_model
        self.backend = RewardModelBackend(reward_model, agent_id)

    def add_eval_batch(self, archs: list[Architecture]) -> None:
        self._begin_batch(archs)
        all_cached = True
        for arch in archs:
            submit = self.clock()
            self.num_submitted += 1
            if self._replay_hit(arch, submit):
                all_cached = False
                continue
            if self._cache_hit(arch, submit):
                continue
            all_cached = False
            try:
                result = self.backend.execute(arch)
            except Exception:   # noqa: BLE001 — surfaced as failure record
                self._fail(arch, max(0.0, self.clock() - submit), 0,
                           submit, submit, self.clock())
                continue
            self._complete(arch, result, submit, submit, self.clock())
        self.last_batch_all_cached = all_cached and bool(archs)
