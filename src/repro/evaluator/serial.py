"""In-process evaluator backend (the "laptop" end of the scale).

Evaluations run immediately and synchronously on ``add_eval_batch``;
``get_finished_evals`` drains the completion queue.  Used by the
examples and by real-training searches, where the reward model's
duration is genuine wall time.
"""

from __future__ import annotations

import time

from ..nas.arch import Architecture
from ..rewards.base import RewardModel
from .base import EvalRecord, Evaluator
from .cache import EvalCache

__all__ = ["SerialEvaluator"]


class SerialEvaluator(Evaluator):
    def __init__(self, reward_model: RewardModel, agent_id: int = 0,
                 use_cache: bool = True, clock=time.monotonic) -> None:
        super().__init__(agent_id)
        self.reward_model = reward_model
        self.cache = EvalCache() if use_cache else None
        self.clock = clock
        self._finished: list[EvalRecord] = []

    def add_eval_batch(self, archs: list[Architecture]) -> None:
        for arch in archs:
            submit = self.clock()
            self.num_submitted += 1
            cached = self.cache.get(arch) if self.cache is not None else None
            if cached is not None:
                self.num_cache_hits += 1
                self._finished.append(EvalRecord(
                    arch, cached, self.agent_id, submit, submit,
                    self.clock(), cached=True))
                continue
            result = self.reward_model.evaluate(arch, agent_seed=self.agent_id)
            if self.cache is not None:
                self.cache.put(arch, result)
            self._finished.append(EvalRecord(
                arch, result, self.agent_id, submit, submit, self.clock()))

    def get_finished_evals(self) -> list[EvalRecord]:
        out, self._finished = self._finished, []
        return out
