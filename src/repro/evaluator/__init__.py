"""Model-evaluation interface with several execution backends (§4)."""

from .balsam import BalsamEvaluator, BalsamJob, BalsamService
from .base import EvalRecord, Evaluator
from .broker import EvalBackend, EvalBroker, RewardModelBackend
from .cache import EvalCache
from .process import ProcConfig, ProcessEvaluator
from .serial import SerialEvaluator
from .thread import ThreadEvaluator

__all__ = ['BalsamEvaluator', 'BalsamJob', 'BalsamService', 'EvalBackend',
           'EvalBroker', 'EvalCache', 'EvalRecord', 'Evaluator',
           'ProcConfig', 'ProcessEvaluator', 'RewardModelBackend',
           'SerialEvaluator', 'ThreadEvaluator']
