"""Unified evaluation broker (§4).

The paper's evaluator "enforces a complete separation of concerns
between the search and the backend".  The broker is where that
separation lives: it is the single submit/poll front-end that owns the
agent-local :class:`~repro.evaluator.cache.EvalCache`, cache-hit
short-circuiting, submission/hit/failure counters, failure-reward
conversion, the finished-record queue, and the wait/shutdown lifecycle.
Backends shrink to a pure ``execute(arch) -> EvalResult`` surface
(:class:`EvalBackend`) plus a dispatch policy — serial, thread pool, or
the simulated Balsam service — and can no longer drift apart on the
shared bookkeeping they used to each reimplement.

The broker also emits the structured event stream (``submit``,
``batch-stats``, ``cache-hit``, ``eval-done``) to an optional
:mod:`repro.events` sink.

When the reward model carries a shared
:class:`~repro.nas.plancache.PlanCache`, the broker *gathers* each
batch against it: the K pending evaluations are deduplicated by
architecture key and every distinct architecture's plan is prefetched
(compiled once, shared across agents) before dispatch, with the
gather's hit/miss/isomorphism statistics surfaced as a ``batch-stats``
event.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from ..events import BATCH_STATS, CACHE_HIT, EVAL_DONE, SUBMIT, EventSink, emit
from ..nas.arch import Architecture
from ..nas.plancache import exact_key
from ..rewards.base import EvalResult, RewardModel
from .base import EvalRecord, Evaluator
from .cache import EvalCache

__all__ = ["EvalBackend", "RewardModelBackend", "ReplayEval", "EvalBroker"]


@dataclass(frozen=True)
class ReplayEval:
    """One journaled completed evaluation, ready to be re-served.

    Built from the write-ahead journal's ``eval-done`` records
    (:func:`repro.search.journal.build_replay`) and loaded into a broker
    via :meth:`EvalBroker.load_replay`: when the resumed search re-submits
    the same architecture, the broker answers from this entry — same
    reward, same recorded completion time, *not* a cache hit — instead
    of re-executing the reward model.  Failures replay as failures
    (``FAILURE_REWARD``, never cached), exactly like the original run.
    """

    key: tuple                  # exact (space, choices) architecture key
    reward: float
    duration: float
    params: int
    timed_out: bool
    nonfinite: bool
    failed: bool
    end_time: float             # the original completion timestamp


class EvalBackend:
    """A pure evaluation executor: one architecture in, one result out.

    Backends never see the cache, the counters, or the record queue —
    the broker owns all of that.  ``execute`` may raise; the broker
    converts the exception into a ``FAILURE_REWARD`` record.
    """

    def execute(self, arch: Architecture) -> EvalResult:
        raise NotImplementedError


class RewardModelBackend(EvalBackend):
    """Wraps a :class:`~repro.rewards.base.RewardModel` as a backend,
    evaluating with the agent-specific seed (§4: rewards depend on the
    agent's random weight initialization)."""

    def __init__(self, reward_model: RewardModel, agent_id: int = 0) -> None:
        self.reward_model = reward_model
        self.agent_id = agent_id

    def execute(self, arch: Architecture) -> EvalResult:
        return self.reward_model.evaluate(arch, agent_seed=self.agent_id)


class EvalBroker(Evaluator):
    """Shared front-end machinery for every evaluator backend.

    Subclasses implement ``add_eval_batch`` in terms of the protected
    helpers — ``_cache_hit`` / ``_complete`` / ``_fail`` — and may
    override ``_poll`` to pump pending completions before a drain.
    Everything the search loop observes (counters, record order,
    ``last_batch_all_cached``, checkpoint restore) is defined here,
    once.
    """

    def __init__(self, agent_id: int = 0, use_cache: bool = True,
                 clock=time.monotonic, sink: EventSink | None = None,
                 plan_source: RewardModel | None = None) -> None:
        super().__init__(agent_id)
        self.cache = EvalCache() if use_cache else None
        self.clock = clock
        self.sink = sink
        #: reward model whose plan cache batches warm (None = no gather)
        self.plan_source = plan_source
        self._finished: list[EvalRecord] = []
        #: journal-replay store: arch key -> FIFO of completed evals the
        #: resumed run must re-serve instead of re-executing
        self._replay: dict[tuple, deque[ReplayEval]] = {}
        #: evaluations answered from the replay store (resume accounting)
        self.num_replayed = 0

    # -- shared bookkeeping -------------------------------------------
    def _begin_batch(self, archs: list[Architecture]) -> None:
        emit(self.sink, SUBMIT, self.clock(), self.agent_id,
             count=len(archs))
        source = self.plan_source
        plan_cache = getattr(source, "plan_cache", None)
        if plan_cache is None or not archs:
            return
        # batched gather: compile each distinct architecture once, up
        # front, so dispatch hits warm plans (prefetch_plan never
        # raises — invalid architectures fail at execution time).
        # Architectures the journal replay will answer are not compiled
        # at all — their results never execute, so a warm plan would be
        # pure waste (the plan hit/miss tallies of a resumed run's
        # batch-stats therefore differ from the original run's; the
        # batch/distinct counts still match).
        distinct = {arch.key: arch for arch in archs}
        before = plan_cache.stats()
        for arch in distinct.values():
            if self._replay and self._replay.get(exact_key(arch)):
                continue
            source.prefetch_plan(arch)
        after = plan_cache.stats()
        emit(self.sink, BATCH_STATS, self.clock(), self.agent_id,
             batch=len(archs), distinct=len(distinct),
             plan_hits=after["hits"] - before["hits"],
             plan_misses=after["misses"] - before["misses"],
             iso_hits=after["iso_hits"] - before["iso_hits"])

    def _cache_hit(self, arch: Architecture, submit_time: float) -> bool:
        """Cache short-circuit: on a hit, record + count + emit.

        Returns True iff the architecture was answered from the cache
        (the caller skips dispatch).  A miss bumps the cache's own miss
        tally as a side effect of the lookup.
        """
        if self.cache is None:
            return False
        cached = self.cache.get(arch)
        if cached is None:
            return False
        self.num_cache_hits += 1
        self._finished.append(EvalRecord(
            arch, cached, self.agent_id, submit_time, submit_time,
            self.clock(), cached=True))
        emit(self.sink, CACHE_HIT, self.clock(), self.agent_id,
             reward=cached.reward)
        return True

    def _complete(self, arch: Architecture, result: EvalResult,
                  submit_time: float, start_time: float,
                  end_time: float) -> None:
        """Deliver one successful evaluation: cache it, queue the record.

        The ``eval-done`` payload carries everything a journal replay
        needs to re-serve the evaluation without re-executing it: the
        architecture, the full result tuple, and (as the event time) the
        completion timestamp.
        """
        if self.cache is not None:
            self.cache.put(arch, result)
        self._finished.append(EvalRecord(
            arch, result, self.agent_id, submit_time, start_time, end_time))
        emit(self.sink, EVAL_DONE, end_time, self.agent_id,
             reward=result.reward, failed=False, arch=arch.to_dict(),
             duration=result.duration, params=result.params,
             timed_out=result.timed_out, nonfinite=result.nonfinite)

    def _fail(self, arch: Architecture, duration: float, params: int,
              submit_time: float, start_time: float,
              end_time: float) -> None:
        """Deliver one failed evaluation as the paper's failure reward.

        Failures are never cached, so the same architecture may be
        re-attempted later.
        """
        self.num_failed += 1
        result = EvalResult(RewardModel.FAILURE_REWARD, duration, params)
        self._finished.append(EvalRecord(
            arch, result, self.agent_id, submit_time, start_time, end_time))
        emit(self.sink, EVAL_DONE, end_time, self.agent_id,
             reward=result.reward, failed=True, arch=arch.to_dict(),
             duration=result.duration, params=result.params,
             timed_out=result.timed_out, nonfinite=result.nonfinite)

    # -- journal replay ------------------------------------------------
    def load_replay(self, entries: list[ReplayEval]) -> None:
        """Arm the broker with journaled completions to re-serve.

        Entries queue FIFO per architecture key, preserving per-key
        completion order — a batch containing the same architecture
        twice (both executed for real in the original run, because the
        second submission raced the first's completion) replays both
        entries in order.
        """
        for entry in entries:
            self._replay.setdefault(tuple(entry.key),
                                    deque()).append(entry)

    def replay_pending(self) -> int:
        """Loaded replay entries not yet consumed (0 after a clean
        resume: determinism re-submits every journaled architecture)."""
        return sum(len(q) for q in self._replay.values())

    def _replay_hit(self, arch: Architecture, submit_time: float) -> bool:
        """Journal-replay short-circuit, checked *before* the cache.

        Order matters: the original run consulted its cache first and
        executed on a miss, so every replay entry corresponds to a
        miss.  Re-checking the cache first would diverge on batches
        containing the same architecture twice — the first replay seeds
        the cache and the second occurrence would flip from a real
        (replayed) record to a cache hit.  The cache's miss tally is
        bumped manually to preserve the restore-counters invariant
        (every submission performs exactly one logical lookup).
        """
        if not self._replay:
            return False
        queue = self._replay.get(exact_key(arch))
        if not queue:
            return False
        entry = queue.popleft()
        self.num_replayed += 1
        if self.cache is not None:
            self.cache.misses += 1
        if entry.failed:
            self.num_failed += 1
            result = EvalResult(RewardModel.FAILURE_REWARD, entry.duration,
                                entry.params, entry.timed_out,
                                entry.nonfinite)
        else:
            result = EvalResult(entry.reward, entry.duration, entry.params,
                                entry.timed_out, entry.nonfinite)
            if self.cache is not None:
                self.cache.put(arch, result)
        self._finished.append(EvalRecord(
            arch, result, self.agent_id, submit_time, submit_time,
            entry.end_time))
        emit(self.sink, EVAL_DONE, entry.end_time, self.agent_id,
             reward=result.reward, failed=entry.failed, arch=arch.to_dict(),
             duration=result.duration, params=result.params,
             timed_out=result.timed_out, nonfinite=result.nonfinite,
             replayed=True)
        return True

    # -- polling -------------------------------------------------------
    def _poll(self) -> None:
        """Pump pending completions into the finished queue (hook)."""

    def get_finished_evals(self) -> list[EvalRecord]:
        self._poll()
        out, self._finished = self._finished, []
        return out

    # -- checkpoint / resurrection support -----------------------------
    def restore_counters(self, num_submitted: int, num_cache_hits: int,
                         num_failed: int) -> None:
        """Rewind the broker's counters to an iteration boundary.

        The cache's own hit/miss tally is restored alongside: every
        submitted architecture performs exactly one cache lookup, so
        ``hits == num_cache_hits`` and ``misses == num_submitted -
        num_cache_hits`` whenever the cache is enabled.
        """
        self.num_submitted = num_submitted
        self.num_cache_hits = num_cache_hits
        self.num_failed = num_failed
        if self.cache is not None:
            self.cache.hits = num_cache_hits
            self.cache.misses = num_submitted - num_cache_hits
