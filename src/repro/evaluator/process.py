"""Supervised multi-process evaluator backend (ROADMAP item 1).

The paper ran reward estimations as real jobs across up to 1,024 Theta
nodes under Balsam, where worker death, hangs, and preemption are the
normal operating regime.  This backend is the real-process end of the
evaluator scale: reward estimations run in a pool of ``spawn``-context
worker processes, and — unlike a bare ``multiprocessing.Pool`` — the
pool is *supervised*:

* **heartbeats** — each worker runs a daemon thread posting liveness
  beats; a worker that stops beating while nominally alive is wedged
  and gets killed like a crash;
* **per-job deadlines** — an evaluation that exceeds
  :attr:`ProcConfig.job_deadline` wall seconds gets its worker
  SIGKILLed and the job retried on another worker after a
  capped-exponential backoff;
* **crash detection + respawn** — a dead worker (segfault, OOM kill,
  external SIGKILL) is detected by liveness polling, its in-flight job
  is retried elsewhere, and a replacement worker is spawned under a
  pool-wide restart budget (:attr:`ProcConfig.max_respawns`);
* **poison-job quarantine** — an architecture that kills
  :attr:`ProcConfig.poison_threshold` *distinct* workers (by crash or
  deadline) is quarantined: it resolves to ``FAILURE_REWARD``
  immediately, a quarantine record is kept, and later submissions of
  the same architecture short-circuit without touching the pool — no
  infinite respawn loop;
* **graceful degradation** — when the respawn budget is exhausted the
  pool shrinks; if it shrinks to nothing, remaining and future jobs run
  in-process serially instead of dying.

Supervision emits typed :mod:`repro.events` records (``worker-spawn``,
``worker-crash``, ``worker-respawn``, ``worker-timeout``,
``quarantine``), and all cache / counter / failure bookkeeping lives in
:class:`~repro.evaluator.broker.EvalBroker`, so the backend is drop-in
interchangeable with serial/thread/Balsam behind the same front-end: in
deterministic mode (no faults, generous deadlines) its rewards — and
therefore search fingerprints — are bit-identical to the serial
backend's, because retries re-run the same pure
``reward_model.evaluate(arch, agent_seed)`` call.

Supervision timing always uses ``time.monotonic`` regardless of the
broker's record clock, so a virtual-clock search driving this backend
still enforces real wall-clock deadlines.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import threading
import time
from collections import deque
from dataclasses import dataclass

from ..events import (QUARANTINE, WORKER_CRASH, WORKER_RESPAWN, WORKER_SPAWN,
                      WORKER_TIMEOUT, EventSink, emit)
from ..nas.arch import Architecture
from ..rewards.base import EvalResult, RewardModel
from .broker import EvalBroker, RewardModelBackend

__all__ = ["ProcConfig", "ProcessEvaluator"]

# worker -> supervisor message tags
_HB, _START, _DONE, _ERR, _BYE = "hb", "start", "done", "err", "bye"


@dataclass(frozen=True)
class ProcConfig:
    """Pool sizing and supervision policy of a :class:`ProcessEvaluator`.

    The defaults are tuned for test-scale pools; production runs raise
    ``workers`` toward the launcher's cores-per-node and ``job_deadline``
    toward the reward model's timeout.
    """

    #: worker processes in the pool
    workers: int = 2
    #: seconds between worker heartbeat posts
    heartbeat_interval: float = 0.25
    #: a nominally-alive worker silent this long is wedged -> killed
    heartbeat_timeout: float = 30.0
    #: wall seconds one evaluation may run before its worker is killed
    #: and the job retried elsewhere (None = no deadline)
    job_deadline: float | None = 60.0
    #: retries after a job's first attempt before it fails outright
    max_job_retries: int = 2
    #: base / cap of the capped-exponential retry backoff (wall seconds)
    retry_backoff: float = 0.05
    retry_backoff_cap: float = 2.0
    #: pool-wide budget of replacement workers; once spent, the pool
    #: shrinks on every further death (graceful degradation)
    max_respawns: int = 8
    #: distinct workers one architecture may kill before it is
    #: quarantined instead of retried
    poison_threshold: int = 2
    #: seconds workers get to exit cleanly at shutdown before SIGKILL
    shutdown_grace: float = 5.0

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat settings must be positive")
        if self.job_deadline is not None and self.job_deadline <= 0:
            raise ValueError("job_deadline must be positive")
        if self.max_job_retries < 0 or self.max_respawns < 0:
            raise ValueError("retry/respawn budgets must be non-negative")
        if self.retry_backoff < 0 or self.retry_backoff_cap < 0:
            raise ValueError("backoff values must be non-negative")
        if self.poison_threshold < 1:
            raise ValueError("poison_threshold must be at least 1")


def _worker_main(worker_id: int, task_q, result_q, payload: bytes,
                 hb_interval: float) -> None:
    """Worker-process entry point (module-level so spawn can import it).

    Receives ``(job_id, arch_dict, agent_seed)`` tuples, posts
    ``(tag, worker_id, body)`` messages back.  A daemon heartbeat thread
    beats every ``hb_interval`` — a pure-Python hang (e.g. an eval stuck
    in ``time.sleep``) keeps beating, which is exactly why hang
    detection is the *deadline's* job while heartbeats detect death and
    wedged interpreters.
    """
    reward_model: RewardModel = pickle.loads(payload)
    stop = threading.Event()

    def _beat() -> None:
        while not stop.is_set():
            try:
                result_q.put((_HB, worker_id, None))
            except Exception:   # noqa: BLE001 — queue torn down; stop quietly
                return
            stop.wait(hb_interval)

    threading.Thread(target=_beat, daemon=True).start()
    while True:
        item = task_q.get()
        if item is None:            # shutdown sentinel
            break
        job_id, arch_dict, agent_seed = item
        result_q.put((_START, worker_id, job_id))
        try:
            arch = Architecture.from_dict(arch_dict)
            res = reward_model.evaluate(arch, agent_seed=agent_seed)
            result_q.put((_DONE, worker_id,
                          (job_id, (res.reward, res.duration, res.params,
                                    res.timed_out, res.nonfinite))))
        except Exception as exc:    # noqa: BLE001 — surfaced as failure record
            try:
                result_q.put((_ERR, worker_id,
                              (job_id, f"{type(exc).__name__}: {exc}")))
            except Exception:       # noqa: BLE001 — dying anyway
                break
    stop.set()
    try:
        result_q.put((_BYE, worker_id, None))
    except Exception:               # noqa: BLE001 — queue already gone
        pass


class _Worker:
    """Supervisor-side handle of one worker incarnation."""

    __slots__ = ("wid", "proc", "task_q", "last_hb", "job", "job_start")

    def __init__(self, wid, proc, task_q, now) -> None:
        self.wid = wid              # incarnation id, never reused
        self.proc = proc
        self.task_q = task_q
        self.last_hb = now
        self.job: _Job | None = None
        self.job_start: float | None = None


class _Job:
    """One reward estimation moving through the supervised pool."""

    __slots__ = ("job_id", "arch", "submit_time", "attempts", "ready_at",
                 "state")

    def __init__(self, job_id: int, arch: Architecture,
                 submit_time: float) -> None:
        self.job_id = job_id
        self.arch = arch
        self.submit_time = submit_time
        self.attempts = 0
        self.ready_at = 0.0         # monotonic time the next attempt may start
        self.state = "pending"      # pending | inflight | resolved


class ProcessEvaluator(EvalBroker):
    """Evaluator backend over a supervised pool of worker processes."""

    def __init__(self, reward_model: RewardModel, agent_id: int = 0,
                 config: ProcConfig | None = None, use_cache: bool = True,
                 clock=time.monotonic, sink: EventSink | None = None,
                 start: bool = True) -> None:
        # no plan_source: compiled plans cannot cross the process
        # boundary, so a parent-side batch gather would only waste work
        super().__init__(agent_id=agent_id, use_cache=use_cache,
                         clock=clock, sink=sink, plan_source=None)
        self.reward_model = reward_model
        self.proc_config = config or ProcConfig()
        self._ctx = mp.get_context("spawn")
        self._payload = self._pickle_reward_model(reward_model)
        self._result_q = None
        self._workers: dict[int, _Worker] = {}
        self._next_wid = 0
        self._next_job_id = 0
        self._pending: deque[_Job] = deque()
        self._jobs: dict[int, _Job] = {}        # every unresolved job
        #: arch key -> worker incarnations it killed (crash or deadline)
        self._kills_by_arch: dict[tuple, set[int]] = {}
        #: arch key -> quarantine record dict
        self.quarantined: dict[tuple, dict] = {}
        self._respawn_budget = self.proc_config.max_respawns
        self._stopped = False
        # in-process fallback once the pool is gone (graceful degradation)
        self._inline_backend = RewardModelBackend(reward_model, agent_id)
        # supervision counters (surfaced via stats())
        self.num_worker_spawns = 0
        self.num_worker_crashes = 0
        self.num_worker_timeouts = 0
        self.num_respawns = 0
        self.num_quarantined = 0
        self.num_inline_evals = 0
        if start:
            for _ in range(self.proc_config.workers):
                self._spawn_worker()

    # -- worker pool ---------------------------------------------------
    @staticmethod
    def _pickle_reward_model(reward_model: RewardModel) -> bytes:
        """Pickle the model with any attached plan cache detached —
        compiled plans hold buffer pools that are meaningless (and
        potentially unpicklable) in a fresh process."""
        cache = reward_model.plan_cache
        try:
            reward_model.set_plan_cache(None)
            return pickle.dumps(reward_model)
        finally:
            reward_model.set_plan_cache(cache)

    def _spawn_worker(self, respawn: bool = False) -> _Worker:
        if self._result_q is None:
            self._result_q = self._ctx.Queue()
        wid = self._next_wid
        self._next_wid += 1
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, task_q, self._result_q, self._payload,
                  self.proc_config.heartbeat_interval),
            daemon=True, name=f"eval-worker-{self.agent_id}-{wid}")
        proc.start()
        worker = _Worker(wid, proc, task_q, time.monotonic())
        self._workers[wid] = worker
        self.num_worker_spawns += 1
        if respawn:
            self.num_respawns += 1
        emit(self.sink, WORKER_RESPAWN if respawn else WORKER_SPAWN,
             self.clock(), self.agent_id, worker=wid, pid=proc.pid)
        return worker

    def worker_pids(self) -> list[int]:
        """PIDs of currently live workers (chaos harness hook)."""
        return [w.proc.pid for w in self._workers.values()
                if w.proc.is_alive() and w.proc.pid is not None]

    @property
    def pool_size(self) -> int:
        return len(self._workers)

    def stats(self) -> dict:
        """Supervision counters, aggregated into ``SearchResult``."""
        return {"worker_spawns": self.num_worker_spawns,
                "worker_crashes": self.num_worker_crashes,
                "worker_timeouts": self.num_worker_timeouts,
                "respawns": self.num_respawns,
                "quarantined": self.num_quarantined,
                "inline_evals": self.num_inline_evals}

    # -- submission ----------------------------------------------------
    def add_eval_batch(self, archs: list[Architecture]) -> None:
        self._begin_batch(archs)
        all_cached = True
        for arch in archs:
            submit = self.clock()
            self.num_submitted += 1
            # replay outranks quarantine: a journaled completion — even
            # a journaled failure of a quarantined poison arch — is
            # re-served as recorded, never re-dispatched to the pool
            if self._replay_hit(arch, submit):
                all_cached = False
                continue
            if self._cache_hit(arch, submit):
                continue
            all_cached = False
            if arch.key in self.quarantined:
                # known poison: failure reward without touching the pool
                self.quarantined[arch.key]["resubmits"] += 1
                self._fail(arch, 0.0, 0, submit, submit, self.clock())
                continue
            job = _Job(self._next_job_id, arch, submit)
            self._next_job_id += 1
            self._jobs[job.job_id] = job
            self._pending.append(job)
        self.last_batch_all_cached = all_cached and bool(archs)
        self._pump(0.0)

    # -- polling / lifecycle -------------------------------------------
    def _poll(self) -> None:
        self._pump(0.0)

    def wait_all(self, timeout: float | None = None) -> None:
        """Pump supervision until every job resolved (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._jobs:
            if deadline is not None and time.monotonic() >= deadline:
                return
            self._pump(0.05)

    def shutdown(self) -> None:
        """Tear the pool down (idempotent): sentinel, grace, SIGKILL."""
        if self._stopped:
            return
        self._stopped = True
        for worker in self._workers.values():
            try:
                worker.task_q.put_nowait(None)
            except Exception:   # noqa: BLE001 — worker already gone
                pass
        deadline = time.monotonic() + self.proc_config.shutdown_grace
        for worker in self._workers.values():
            worker.proc.join(max(0.0, deadline - time.monotonic()))
        for worker in self._workers.values():
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(1.0)
            worker.task_q.close()
        self._workers.clear()
        if self._result_q is not None:
            self._result_q.close()
            # don't let the feeder thread block interpreter exit
            self._result_q.cancel_join_thread()
            self._result_q = None

    # -- quarantine checkpoint support ---------------------------------
    def quarantine_snapshot(self) -> list:
        """JSON-ready ``[space, choices, kills, resubmits]`` rows."""
        return [[space, list(choices), rec["kills"], rec["resubmits"]]
                for (space, choices), rec in self.quarantined.items()]

    def restore_quarantine(self, entries: list) -> None:
        """Rehydrate quarantine records from a checkpoint snapshot."""
        for space, choices, kills, resubmits in entries:
            key = (space, tuple(int(c) for c in choices))
            self.quarantined[key] = {"kills": int(kills),
                                     "resubmits": int(resubmits)}

    # -- the supervision pump ------------------------------------------
    def _pump(self, block: float) -> None:
        """One supervision cycle: drain messages, police workers,
        dispatch ready jobs.  ``block`` bounds how long the first queue
        read may wait; everything after is non-blocking."""
        if self._result_q is not None:
            timeout = block
            while True:
                try:
                    if timeout > 0:
                        msg = self._result_q.get(timeout=timeout)
                    else:
                        msg = self._result_q.get_nowait()
                except (queue_mod.Empty, OSError, ValueError):
                    break
                timeout = 0.0
                self._handle_message(msg)
        self._supervise()
        self._dispatch()

    def _handle_message(self, msg: tuple) -> None:
        tag, wid, body = msg
        worker = self._workers.get(wid)
        if worker is not None:
            worker.last_hb = time.monotonic()
        if tag in (_HB, _BYE):
            return
        if tag == _START:
            if worker is not None and worker.job is not None \
                    and worker.job.job_id == body:
                worker.job_start = time.monotonic()
            return
        job_id = body[0]
        job = self._jobs.get(job_id)
        if job is None or job.state == "resolved":
            return      # stale result: the job was already failed/retried
        if worker is not None and worker.job is job:
            worker.job = None
            worker.job_start = None
        if tag == _DONE:
            reward, duration, params, timed_out, nonfinite = body[1]
            result = EvalResult(float(reward), float(duration), int(params),
                                bool(timed_out), bool(nonfinite))
            self._resolve(job)
            self._complete(job.arch, result, job.submit_time,
                           job.submit_time, self.clock())
        else:           # _ERR: the reward model raised inside the worker
            self._resolve(job)
            self._fail(job.arch, 0.0, 0, job.submit_time, job.submit_time,
                       self.clock())

    def _resolve(self, job: _Job) -> None:
        job.state = "resolved"
        self._jobs.pop(job.job_id, None)

    def _supervise(self) -> None:
        """Liveness, heartbeat, and deadline police over the pool."""
        if self._stopped:
            return
        cfg = self.proc_config
        now = time.monotonic()
        for worker in list(self._workers.values()):
            if not worker.proc.is_alive():
                self._on_worker_death(
                    worker, WORKER_CRASH,
                    f"worker died (exitcode {worker.proc.exitcode})")
            elif worker.job is not None and cfg.job_deadline is not None \
                    and worker.job_start is not None \
                    and now - worker.job_start > cfg.job_deadline:
                worker.proc.kill()
                worker.proc.join(1.0)
                self._on_worker_death(
                    worker, WORKER_TIMEOUT,
                    f"job exceeded {cfg.job_deadline:.1f}s deadline")
            elif now - worker.last_hb > cfg.heartbeat_timeout:
                worker.proc.kill()
                worker.proc.join(1.0)
                self._on_worker_death(worker, WORKER_CRASH,
                                      "heartbeat lost (wedged worker)")

    def _on_worker_death(self, worker: _Worker, kind: str,
                         cause: str) -> None:
        self._workers.pop(worker.wid, None)
        worker.task_q.close()
        if kind == WORKER_TIMEOUT:
            self.num_worker_timeouts += 1
        else:
            self.num_worker_crashes += 1
        emit(self.sink, kind, self.clock(), self.agent_id,
             worker=worker.wid, cause=cause)
        job = worker.job
        if job is not None and job.state == "inflight":
            self._retry_or_quarantine(job, worker.wid)
        # respawn under budget; past it the pool shrinks gracefully
        if not self._stopped and self._respawn_budget > 0:
            self._respawn_budget -= 1
            self._spawn_worker(respawn=True)

    def _retry_or_quarantine(self, job: _Job, killer_wid: int) -> None:
        cfg = self.proc_config
        kills = self._kills_by_arch.setdefault(job.arch.key, set())
        kills.add(killer_wid)
        job.state = "pending"
        if len(kills) >= cfg.poison_threshold:
            # poison job: this arch has now killed enough distinct
            # workers; stop feeding it workers forever
            self.quarantined[job.arch.key] = {"kills": len(kills),
                                              "resubmits": 0}
            self.num_quarantined += 1
            emit(self.sink, QUARANTINE, self.clock(), self.agent_id,
                 arch=job.arch.to_dict(), kills=len(kills))
            self._resolve(job)
            self._fail(job.arch, 0.0, 0, job.submit_time, job.submit_time,
                       self.clock())
            return
        if job.attempts > cfg.max_job_retries:
            self._resolve(job)
            self._fail(job.arch, 0.0, 0, job.submit_time, job.submit_time,
                       self.clock())
            return
        backoff = min(cfg.retry_backoff * 2.0 ** (job.attempts - 1),
                      cfg.retry_backoff_cap)
        job.ready_at = time.monotonic() + backoff
        self._pending.append(job)

    def _dispatch(self) -> None:
        if self._stopped:
            return
        now = time.monotonic()
        if not self._workers:
            # graceful degradation: no pool left — remaining jobs run
            # in-process serially rather than the evaluator dying
            while self._pending:
                job = self._pending.popleft()
                if job.state != "pending":
                    continue
                self._run_inline(job)
            return
        idle = [w for w in self._workers.values() if w.job is None]
        deferred: list[_Job] = []
        while idle and self._pending:
            job = self._pending.popleft()
            if job.state != "pending":
                continue
            if job.ready_at > now:      # still backing off
                deferred.append(job)
                continue
            worker = idle.pop(0)
            job.state = "inflight"
            job.attempts += 1
            worker.job = job
            # deadline clock starts at hand-off; the START message
            # refreshes it to the actual execution start
            worker.job_start = now
            worker.task_q.put((job.job_id, job.arch.to_dict(),
                               self.agent_id))
        for job in reversed(deferred):
            self._pending.appendleft(job)

    def _run_inline(self, job: _Job) -> None:
        self.num_inline_evals += 1
        self._resolve(job)
        try:
            result = self._inline_backend.execute(job.arch)
        except Exception:   # noqa: BLE001 — same conversion as every backend
            self._fail(job.arch, 0.0, 0, job.submit_time, job.submit_time,
                       self.clock())
            return
        self._complete(job.arch, result, job.submit_time, job.submit_time,
                       self.clock())
