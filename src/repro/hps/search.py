"""Random search and successive halving over training hyperparameters."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nas.arch import Architecture
from ..nn.training import Trainer
from ..problems.base import Problem
from ..rewards.training import arch_seed

__all__ = ["HyperparameterSpace", "HpsResult", "random_search",
           "successive_halving"]


@dataclass(frozen=True)
class HyperparameterSpace:
    """Log-uniform learning rate, categorical batch size, epoch budget."""

    lr_range: tuple[float, float] = (1e-4, 1e-2)
    batch_sizes: tuple[int, ...] = (16, 32, 64, 128)
    max_epochs: int = 16

    def __post_init__(self) -> None:
        lo, hi = self.lr_range
        if not 0 < lo < hi:
            raise ValueError("lr_range must satisfy 0 < lo < hi")
        if not self.batch_sizes:
            raise ValueError("need at least one batch size")
        if self.max_epochs <= 0:
            raise ValueError("max_epochs must be positive")

    def sample(self, rng: np.random.Generator) -> dict:
        lo, hi = self.lr_range
        return {
            "lr": float(np.exp(rng.uniform(np.log(lo), np.log(hi)))),
            "batch_size": int(self.batch_sizes[
                rng.integers(len(self.batch_sizes))]),
        }


@dataclass
class HpsResult:
    """Outcome of a hyperparameter search."""

    best_config: dict
    best_metric: float
    trials: list[tuple[dict, float]] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        return len(self.trials)


def _evaluate(problem: Problem, arch: Architecture | None, config: dict,
              epochs: int, seed: int) -> float:
    """Train (arch or the baseline) under ``config``; return the metric."""
    rng_seed = arch_seed(seed, 0, arch) if arch is not None else seed
    rng = np.random.default_rng(rng_seed)
    model = (problem.build_model(arch.choices, rng) if arch is not None
             else problem.build_baseline(rng))
    trainer = Trainer(loss=problem.loss, metric=problem.metric,
                      batch_size=config["batch_size"], epochs=epochs,
                      lr=config["lr"], seed=rng_seed)
    ds = problem.dataset
    hist = trainer.fit(model, ds.x_train, ds.y_train, ds.x_val, ds.y_val)
    metric = float(hist.val_metric)
    return metric if np.isfinite(metric) else -1.0


def random_search(problem: Problem, space: HyperparameterSpace,
                  num_trials: int = 16, arch: Architecture | None = None,
                  epochs: int | None = None, seed: int = 0) -> HpsResult:
    """Independent uniform trials at a fixed epoch budget."""
    if num_trials <= 0:
        raise ValueError("num_trials must be positive")
    rng = np.random.default_rng(seed)
    budget = epochs or space.max_epochs
    trials = []
    for _ in range(num_trials):
        config = space.sample(rng)
        metric = _evaluate(problem, arch, config, budget, seed)
        trials.append((config, metric))
    best_config, best_metric = max(trials, key=lambda t: t[1])
    return HpsResult(best_config, best_metric, trials)


def successive_halving(problem: Problem, space: HyperparameterSpace,
                       num_configs: int = 16, eta: int = 2,
                       min_epochs: int = 1,
                       arch: Architecture | None = None,
                       seed: int = 0) -> HpsResult:
    """Successive halving: start many configs at a small epoch budget,
    keep the top 1/eta at each rung with eta× the budget."""
    if num_configs <= 1:
        raise ValueError("num_configs must be > 1")
    if eta < 2:
        raise ValueError("eta must be >= 2")
    rng = np.random.default_rng(seed)
    survivors = [space.sample(rng) for _ in range(num_configs)]
    budget = min_epochs
    all_trials: list[tuple[dict, float]] = []
    scored: list[tuple[dict, float]] = []
    while True:
        scored = [(cfg, _evaluate(problem, arch, cfg, budget, seed))
                  for cfg in survivors]
        all_trials.extend(scored)
        if len(survivors) <= 1 or budget >= space.max_epochs:
            break
        scored.sort(key=lambda t: -t[1])
        survivors = [cfg for cfg, _ in
                     scored[:max(1, len(scored) // eta)]]
        budget = min(space.max_epochs, budget * eta)
    best_config, best_metric = max(scored, key=lambda t: t[1])
    return HpsResult(best_config, best_metric, all_trials)
