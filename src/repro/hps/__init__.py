"""Hyperparameter search for fixed architectures (§7 future work).

DeepHyper pairs its NAS module with asynchronous hyperparameter search;
the paper lists "integrating hyperparameter search approaches" as future
work.  This module provides that integration at the scale of this
reproduction: random search and asynchronous successive halving (the
core of Hyperband) over training hyperparameters (learning rate, batch
size, epochs) of a fixed architecture, reusing the Trainer and Problem
abstractions.
"""

from .search import (HpsResult, HyperparameterSpace, random_search,
                     successive_halving)

__all__ = ["HpsResult", "HyperparameterSpace", "random_search",
           "successive_halving"]
