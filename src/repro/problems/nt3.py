"""NT3 benchmark (§2.3): tumor/normal tissue classification.

The manually designed DNN: Conv1D(128 filters, kernel 20) → MaxPool(1) →
Conv1D(128, kernel 10) → MaxPool(10) → Flatten → Dense(200) →
Dropout(0.1) → Dense(20) → Dropout(0.1) → Dense(2, softmax).

Note on Table 1: the paper reports 96,777,878 baseline parameters, which
is not consistent with this §2.3 description under either valid or same
padding at d = 60,483 (the described topology gives 154,922,918 with
valid padding).  We reproduce the described topology; EXPERIMENTS.md
records the discrepancy.
"""

from __future__ import annotations

from ..nas.nodes import ConstantNode
from ..nas.ops import (Conv1DOp, DenseOp, DropoutOp, MaxPooling1DOp,
                       Operation)
from ..nas.space import Block, Cell, Structure
from ..nas.spaces.nt3 import NT3_INPUTS, nt3_small
from .base import Problem
from .datasets import make_nt3_data

__all__ = ["nt3_baseline", "nt3_problem", "NT3_PAPER_SHAPES"]

NT3_PAPER_SHAPES = {"rnaseq_expression": (60483, 1)}


def nt3_baseline(filters: int = 128, dense_scale: float = 1.0) -> Structure:
    """The manually designed NT3 CNN as a zero-action structure."""
    def u(units: int) -> int:
        # floor of 8 keeps the penultimate Dense(20) from collapsing to a
        # one-unit bottleneck at aggressive working scales
        return max(8, round(units * dense_scale)) if dense_scale < 1.0 \
            else units

    s = Structure("nt3-baseline", NT3_INPUTS, output_sources="last_cell")
    c0 = Cell("C0")
    b = Block("B0", inputs=["rnaseq_expression"])
    b.add_node(ConstantNode("N0", Conv1DOp(20, filters=filters,
                                           activation="relu")))
    b.add_node(ConstantNode("N1", MaxPooling1DOp(1)))
    b.add_node(ConstantNode("N2", Conv1DOp(10, filters=filters,
                                           activation="relu")))
    b.add_node(ConstantNode("N3", MaxPooling1DOp(10)))
    b.add_node(ConstantNode("N4", DenseOp(u(200), "relu")))
    b.add_node(ConstantNode("N5", DropoutOp(0.1)))
    b.add_node(ConstantNode("N6", DenseOp(u(20), "relu")))
    b.add_node(ConstantNode("N7", DropoutOp(0.1)))
    c0.add_block(b)
    s.add_cell(c0)
    s.validate()
    return s


def nt3_head(num_classes: int = 2) -> list[Operation]:
    return [DenseOp(num_classes, "softmax")]


def nt3_problem(scale: float = 0.1, length: int = 180,
                n_train: int = 256, n_val: int = 96,
                filters: int = 8, baseline_filters: int = 16,
                batch_size: int = 20, seed: int = 0) -> Problem:
    """Working-scale NT3 problem.

    ``length`` shrinks the 60,483-long expression vector; ``scale``
    shrinks the search space's Dense widths; ``baseline_filters`` shrinks
    the baseline's 128 conv filters.
    """
    return Problem(
        name="nt3",
        dataset=make_nt3_data(n_train, n_val, length, seed=seed),
        space=nt3_small(scale, filters=filters),
        baseline=nt3_baseline(baseline_filters, dense_scale=scale),
        head_ops=nt3_head(),
        loss="categorical_crossentropy",
        metric="accuracy",
        batch_size=batch_size,
        paper_input_shapes=NT3_PAPER_SHAPES,
        paper_scale_baseline=lambda: nt3_baseline(128, 1.0),
        paper_scale_head=nt3_head,
    )
