"""Problem definition: dataset + search space + baseline + training config.

A :class:`Problem` bundles everything a NAS run needs: the synthetic
dataset, the search-space factory, the manually designed baseline (as a
zero-action constant structure so parameter counts come from the compiler
without allocating weights), the output head, loss/metric, and the
paper's training hyperparameters (batch size per benchmark, Adam lr).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..nas.builder import build_model, compile_architecture, count_parameters
from ..nas.ops import Operation
from ..nas.space import Structure
from ..nn.graph import GraphModel
from .datasets import Dataset

__all__ = ["Problem"]


@dataclass
class Problem:
    """A NAS benchmark problem (Combo, Uno or NT3)."""

    name: str
    dataset: Dataset
    space: Structure
    baseline: Structure
    head_ops: list[Operation]
    loss: str
    metric: str
    batch_size: int
    #: input shapes at the paper's full scale, used for exact
    #: parameter-count reproduction (Table 1)
    paper_input_shapes: dict[str, tuple[int, ...]] = field(default_factory=dict)

    @property
    def input_shapes(self) -> dict[str, tuple[int, ...]]:
        return self.dataset.input_shapes

    # -- model construction ---------------------------------------------
    def build_model(self, choices, rng: np.random.Generator | None = None
                    ) -> GraphModel:
        """Materialize an architecture of the search space on this data."""
        return build_model(self.space, choices, self.input_shapes,
                           self.head_ops, rng)

    def build_baseline(self, rng: np.random.Generator | None = None
                       ) -> GraphModel:
        """Materialize the manually designed network at dataset scale."""
        return build_model(self.baseline, (), self.input_shapes,
                           self.head_ops, rng)

    # -- parameter accounting ---------------------------------------------
    def count_params(self, choices) -> int:
        return count_parameters(self.space, choices, self.input_shapes,
                                self.head_ops)

    def baseline_params(self, paper_scale: bool = False) -> int:
        """Trainable parameters of the baseline.

        With ``paper_scale=True`` the count uses the paper's input
        dimensions and must reproduce Table 1 exactly for Combo and Uno.
        """
        shapes = self.paper_input_shapes if paper_scale else self.input_shapes
        baseline = self.paper_scale_baseline() if paper_scale else self.baseline
        head = self.paper_scale_head() if paper_scale else self.head_ops
        return count_parameters(baseline, (), shapes, head)

    # Subclass hooks (the per-benchmark modules bind these via factory
    # closures; defaults fall back to the working-scale definitions).
    paper_scale_baseline: Callable[[], Structure] = None  # type: ignore[assignment]
    paper_scale_head: Callable[[], list[Operation]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.paper_scale_baseline is None:
            self.paper_scale_baseline = lambda: self.baseline
        if self.paper_scale_head is None:
            self.paper_scale_head = lambda: self.head_ops
        missing = set(self.space.inputs) - set(self.input_shapes)
        if missing:
            raise ValueError(
                f"dataset lacks inputs {sorted(missing)} required by the "
                f"space {self.space.name!r}")
