"""Combo benchmark (§2.1): drug-pair growth regression.

The manually designed network has three input layers — cell expression
(d=942) and two drug-descriptor inputs (d=3,820) sharing one
three-layer Dense(1000) submodel — whose outputs are concatenated into
three more Dense(1000) layers and a scalar head.  At the paper's input
dimensions this baseline has exactly **13,772,001** trainable parameters
(Table 1), which :func:`combo_baseline` reproduces via the compiler.
"""

from __future__ import annotations

from ..nas.nodes import ConstantNode, MirrorNode
from ..nas.ops import DenseOp, Operation
from ..nas.space import Block, Cell, Structure
from ..nas.spaces.combo import COMBO_INPUTS, combo_large, combo_small
from .base import Problem
from .datasets import make_combo_data

__all__ = ["combo_baseline", "combo_problem", "COMBO_PAPER_SHAPES"]

COMBO_PAPER_SHAPES = {"cell_expression": (942,), "drug1_descriptors": (3820,),
                      "drug2_descriptors": (3820,)}


def combo_baseline(units: int = 1000) -> Structure:
    """The manually designed Combo DNN as a zero-action structure."""
    s = Structure("combo-baseline", COMBO_INPUTS, output_sources="last_cell")

    c0 = Cell("C0")
    b0 = Block("B0", inputs=["cell_expression"])
    for i in range(3):
        b0.add_node(ConstantNode(f"N{i}", DenseOp(units, "relu")))
    c0.add_block(b0)
    b1 = Block("B1", inputs=["drug1_descriptors"])
    shared = [ConstantNode(f"N{i}", DenseOp(units, "relu")) for i in range(3)]
    for node in shared:
        b1.add_node(node)
    c0.add_block(b1)
    b2 = Block("B2", inputs=["drug2_descriptors"])
    for i, target in enumerate(shared):
        b2.add_node(MirrorNode(f"N{i}", target))
    c0.add_block(b2)
    s.add_cell(c0)

    c1 = Cell("C1")
    b = Block("B0", inputs=["C0"])
    for i in range(3):
        b.add_node(ConstantNode(f"N{i}", DenseOp(units, "relu")))
    c1.add_block(b)
    s.add_cell(c1)

    s.validate()
    return s


def combo_head() -> list[Operation]:
    """Scalar regression head (percent growth)."""
    return [DenseOp(1, "linear")]


def combo_problem(scale: float = 0.04, large: bool = False,
                  n_train: int = 1024, n_val: int = 256,
                  cell_dim: int = 60, drug_dim: int = 80,
                  batch_size: int = 256, seed: int = 0) -> Problem:
    """Working-scale Combo problem.

    ``scale`` shrinks both the search space's Dense widths and the
    baseline (Dense(1000) → Dense(40) at the default), keeping every
    ratio experiment meaningful at laptop scale.
    """
    units = max(1, round(1000 * scale))
    space = combo_large(scale) if large else combo_small(scale)
    return Problem(
        name="combo",
        dataset=make_combo_data(n_train, n_val, cell_dim, drug_dim, seed=seed),
        space=space,
        baseline=combo_baseline(units),
        head_ops=combo_head(),
        loss="mse",
        metric="r2",
        batch_size=batch_size,
        paper_input_shapes=COMBO_PAPER_SHAPES,
        paper_scale_baseline=lambda: combo_baseline(1000),
        paper_scale_head=combo_head,
    )
