"""Uno benchmark (§2.2): tumor dose-response regression.

Four inputs — RNA-seq (d=942), scalar dose, drug descriptors (d=5,270),
drug fingerprints (d=2,048).  Three feature-encoding submodels of three
Dense(1000) layers; their outputs are concatenated *with the dose* into
three more Dense(1000) layers and a scalar head.  At paper dimensions
this is exactly **19,274,001** trainable parameters (Table 1).
"""

from __future__ import annotations

from ..nas.nodes import ConstantNode
from ..nas.ops import DenseOp, IdentityOp, Operation
from ..nas.space import Block, Cell, Structure
from ..nas.spaces.uno import UNO_INPUTS, uno_large, uno_small
from .base import Problem
from .datasets import make_uno_data

__all__ = ["uno_baseline", "uno_problem", "UNO_PAPER_SHAPES"]

UNO_PAPER_SHAPES = {"cell_rnaseq": (942,), "dose": (1,),
                    "drug_descriptors": (5270,), "drug_fingerprints": (2048,)}


def uno_baseline(units: int = 1000) -> Structure:
    """The manually designed Uno DNN as a zero-action structure."""
    s = Structure("uno-baseline", UNO_INPUTS, output_sources="last_cell")

    c0 = Cell("C0")
    for bname, input_name in (("B0", "cell_rnaseq"), ("B1", "dose"),
                              ("B2", "drug_descriptors"),
                              ("B3", "drug_fingerprints")):
        block = Block(bname, inputs=[input_name])
        if input_name == "dose":
            block.add_node(ConstantNode("N0", IdentityOp()))
        else:
            for i in range(3):
                block.add_node(ConstantNode(f"N{i}", DenseOp(units, "relu")))
        c0.add_block(block)
    s.add_cell(c0)

    c1 = Cell("C1")
    b = Block("B0", inputs=["C0"])
    for i in range(3):
        b.add_node(ConstantNode(f"N{i}", DenseOp(units, "relu")))
    c1.add_block(b)
    s.add_cell(c1)

    s.validate()
    return s


def uno_head() -> list[Operation]:
    return [DenseOp(1, "linear")]


def uno_problem(scale: float = 0.04, large: bool = False,
                n_train: int = 768, n_val: int = 192,
                rna_dim: int = 60, desc_dim: int = 90, fp_dim: int = 40,
                noise: float = 0.05, batch_size: int = 32,
                seed: int = 0) -> Problem:
    """Working-scale Uno problem (see :func:`combo_problem` for scaling).

    ``noise`` sets the label-noise level; raising it makes the
    overparameterized baseline overfit — the regime behind the paper's
    Uno result, where most NAS architectures beat the manual network.
    """
    units = max(1, round(1000 * scale))
    space = uno_large(scale) if large else uno_small(scale)
    return Problem(
        name="uno",
        dataset=make_uno_data(n_train, n_val, rna_dim, desc_dim, fp_dim,
                              noise=noise, seed=seed),
        space=space,
        baseline=uno_baseline(units),
        head_ops=uno_head(),
        loss="mse",
        metric="r2",
        batch_size=batch_size,
        paper_input_shapes=UNO_PAPER_SHAPES,
        paper_scale_baseline=lambda: uno_baseline(1000),
        paper_scale_head=uno_head,
    )
