"""Synthetic stand-ins for the CANDLE data sets.

The real NCI-ALMANAC / multi-source dose-response / RNA-seq data is not
available offline, so each generator produces data with the same *input
structure* as the corresponding CANDLE benchmark (§2), driven by a seeded
smooth nonlinear ground truth:

* **Combo** — three inputs (cell expression, two drug-descriptor vectors)
  where the target is symmetric in the two drugs (drug-pair synergy), so
  the weight-shared drug submodel is the *right* inductive bias;
* **Uno** — four inputs including a scalar dose, with a multiplicative
  dose-response curve, so architectures that keep the dose signal win;
* **NT3** — a long 1-D expression profile whose class is determined by
  localized motifs, so 1-D convolutions are the right primitive.

All generators draw low-dimensional latent factors and lift them through
random nonlinear maps; a feature-dimension therefore carries redundant,
correlated signal — like real omics data — and small networks can reach
high R²/accuracy, which keeps post-training cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Dataset", "make_combo_data", "make_uno_data", "make_nt3_data",
           "one_hot"]


@dataclass
class Dataset:
    """Train/validation split with named multi-input features."""

    x_train: dict[str, np.ndarray]
    y_train: np.ndarray
    x_val: dict[str, np.ndarray]
    y_val: np.ndarray
    input_shapes: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.input_shapes:
            self.input_shapes = {k: v.shape[1:] for k, v in self.x_train.items()}
        n = len(self.y_train)
        for k, v in self.x_train.items():
            if len(v) != n:
                raise ValueError(f"input {k!r} has {len(v)} rows, expected {n}")

    @property
    def n_train(self) -> int:
        return len(self.y_train)

    @property
    def n_val(self) -> int:
        return len(self.y_val)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    out = np.zeros((len(labels), num_classes))
    out[np.arange(len(labels)), labels.astype(int)] = 1.0
    return out


def _lift(z: np.ndarray, dim: int, rng: np.random.Generator) -> np.ndarray:
    """Lift latent factors to ``dim`` noisy, correlated observed features."""
    w = rng.standard_normal((z.shape[1], dim)) / np.sqrt(z.shape[1])
    x = np.tanh(z @ w) + 0.05 * rng.standard_normal((z.shape[0], dim))
    return x


def make_combo_data(n_train: int = 1024, n_val: int = 256,
                    cell_dim: int = 60, drug_dim: int = 80,
                    latent: int = 6, noise: float = 0.05,
                    seed: int = 0) -> Dataset:
    """Drug-pair growth regression with a drug-symmetric ground truth."""
    rng = np.random.default_rng(seed)
    n = n_train + n_val
    zc = rng.standard_normal((n, latent))
    z1 = rng.standard_normal((n, latent))
    z2 = rng.standard_normal((n, latent))

    cell = _lift(zc, cell_dim, rng)
    w_drug = rng.standard_normal((latent, drug_dim)) / np.sqrt(latent)
    drug1 = np.tanh(z1 @ w_drug) + 0.05 * rng.standard_normal((n, drug_dim))
    drug2 = np.tanh(z2 @ w_drug) + 0.05 * rng.standard_normal((n, drug_dim))

    a = rng.standard_normal(latent)
    b = rng.standard_normal(latent)
    m = rng.standard_normal((latent, latent)) / latent
    # growth %: cell effect + symmetric single-drug effects + symmetric
    # drug-drug synergy modulated by the cell line
    y = (np.tanh(zc @ a)
         + np.tanh(z1 @ b) + np.tanh(z2 @ b)
         + np.sum((z1 @ m) * z2, axis=1) * np.tanh(zc @ a) * 0.5
         + noise * rng.standard_normal(n))
    y = ((y - y.mean()) / y.std())[:, None]

    x = {"cell_expression": cell, "drug1_descriptors": drug1,
         "drug2_descriptors": drug2}
    return Dataset(
        {k: v[:n_train] for k, v in x.items()}, y[:n_train],
        {k: v[n_train:] for k, v in x.items()}, y[n_train:])


def make_uno_data(n_train: int = 768, n_val: int = 192,
                  rna_dim: int = 60, desc_dim: int = 90, fp_dim: int = 40,
                  latent: int = 6, noise: float = 0.05,
                  seed: int = 0) -> Dataset:
    """Single-drug dose-response regression with a scalar dose input."""
    rng = np.random.default_rng(seed)
    n = n_train + n_val
    zc = rng.standard_normal((n, latent))
    zd = rng.standard_normal((n, latent))

    rna = _lift(zc, rna_dim, rng)
    desc = _lift(zd, desc_dim, rng)
    fp = (rng.random((n, fp_dim)) < _sigmoid_rows(zd, fp_dim, rng)).astype(float)
    dose = rng.uniform(-1.0, 1.0, size=(n, 1))

    a = rng.standard_normal(latent)
    b = rng.standard_normal(latent)
    # Hill-like response: a cell×drug sensitivity interaction scaled by
    # dose, a population-level dose main effect, and additive cell/drug
    # effects — balanced so shallow networks reach moderate R² quickly
    # while the interaction leaves headroom for better architectures
    sensitivity = np.tanh(zc @ a) * np.tanh(zd @ b)
    hill = 1.0 / (1.0 + np.exp(-3.0 * dose[:, 0]))
    y = 0.8 * sensitivity * hill + 0.5 * (hill - 0.5) \
        + 0.5 * np.tanh(zc @ b) + 0.4 * np.tanh(zd @ a) \
        + noise * rng.standard_normal(n)
    y = ((y - y.mean()) / y.std())[:, None]

    x = {"cell_rnaseq": rna, "dose": dose, "drug_descriptors": desc,
         "drug_fingerprints": fp}
    return Dataset(
        {k: v[:n_train] for k, v in x.items()}, y[:n_train],
        {k: v[n_train:] for k, v in x.items()}, y[n_train:])


def _sigmoid_rows(z: np.ndarray, dim: int, rng: np.random.Generator) -> np.ndarray:
    w = rng.standard_normal((z.shape[1], dim)) / np.sqrt(z.shape[1])
    return 1.0 / (1.0 + np.exp(-(z @ w)))


def make_nt3_data(n_train: int = 256, n_val: int = 96, length: int = 180,
                  num_classes: int = 2, noise: float = 0.4,
                  seed: int = 0) -> Dataset:
    """Tumor-vs-normal classification over a long 1-D expression profile.

    Each class plants class-specific bump motifs at class-specific loci on
    a smooth background, so convolutional feature extraction genuinely
    helps; labels are one-hot (softmax output head).
    """
    if length < 71:
        raise ValueError("length must be >= 71 to keep the NT3 space valid")
    rng = np.random.default_rng(seed)
    n = n_train + n_val
    labels = rng.integers(num_classes, size=n)
    t = np.arange(length)

    # class templates: gaussian bumps at interleaved, class-specific loci
    # (deterministic placement guarantees separable classes at any seed)
    templates = np.zeros((num_classes, length))
    bumps = 3
    for c in range(num_classes):
        for k in range(bumps):
            frac = (c + num_classes * k + 1) / (num_classes * bumps + 1)
            center = frac * length
            width = rng.uniform(2.0, 5.0)
            sign = 1.0 if (c + k) % 2 == 0 else -1.0
            templates[c] += sign * np.exp(-0.5 * ((t - center) / width) ** 2)

    background = np.sin(2 * np.pi * t / length * rng.uniform(1, 3))
    x = (background + templates[labels]
         + noise * rng.standard_normal((n, length)))
    x = x[:, :, None]  # (n, length, channels=1)
    y = one_hot(labels, num_classes)

    return Dataset({"rnaseq_expression": x[:n_train]}, y[:n_train],
                   {"rnaseq_expression": x[n_train:]}, y[n_train:])
