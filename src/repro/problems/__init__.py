"""The three CANDLE benchmark problems with synthetic data."""

from .base import Problem
from .combo import COMBO_PAPER_SHAPES, combo_baseline, combo_problem
from .datasets import (Dataset, make_combo_data, make_nt3_data,
                       make_uno_data, one_hot)
from .nt3 import NT3_PAPER_SHAPES, nt3_baseline, nt3_problem
from .uno import UNO_PAPER_SHAPES, uno_baseline, uno_problem

__all__ = [
    "COMBO_PAPER_SHAPES", "Dataset", "NT3_PAPER_SHAPES", "Problem",
    "UNO_PAPER_SHAPES", "combo_baseline", "combo_problem",
    "make_combo_data", "make_nt3_data", "make_uno_data", "nt3_baseline",
    "nt3_problem", "one_hot", "uno_baseline", "uno_problem",
    "get_problem",
]

_PROBLEMS = {"combo": combo_problem, "uno": uno_problem, "nt3": nt3_problem}


def get_problem(name: str, **kwargs) -> Problem:
    """Construct a benchmark problem by name (``combo``/``uno``/``nt3``)."""
    try:
        factory = _PROBLEMS[name]
    except KeyError:
        raise ValueError(
            f"unknown problem {name!r}; choose from {sorted(_PROBLEMS)}") from None
    return factory(**kwargs)
