"""Replication statistics (Fig. 13).

The paper repeats A3C ten times and plots, at each time stamp, the 10%,
50% and 90% quantiles of the reward trajectories — "this removes both
the best and worst values (outliers) for a given time stamp".
"""

from __future__ import annotations

import numpy as np

from ..search.base import RewardRecord
from .trajectory import rolling_mean_trajectory

__all__ = ["quantile_bands"]


def quantile_bands(replications: list[list[RewardRecord]],
                   grid_minutes: np.ndarray,
                   quantiles: tuple[float, ...] = (0.1, 0.5, 0.9),
                   window: int = 100) -> np.ndarray:
    """Per-timestamp quantiles over replications.

    Each replication's rolling-mean reward trajectory is interpolated
    onto ``grid_minutes``; the result has one column per quantile
    (rows = grid points).
    """
    if not replications:
        raise ValueError("need at least one replication")
    grid = np.asarray(grid_minutes, dtype=np.float64)
    curves = np.zeros((len(replications), len(grid)))
    for i, records in enumerate(replications):
        traj = rolling_mean_trajectory(records, window)
        if len(traj) == 0:
            raise ValueError(f"replication {i} has no records")
        curves[i] = np.interp(grid, traj[:, 0], traj[:, 1])
    return np.quantile(curves, quantiles, axis=0).T


def band_spread(bands: np.ndarray) -> np.ndarray:
    """Width of the outer band (last quantile − first) per grid point —
    the paper's randomness-impact measure (shrinks as the search
    progresses)."""
    return bands[:, -1] - bands[:, 0]
