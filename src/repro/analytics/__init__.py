"""Analytics over NAS run logs: trajectories, utilization, best archs."""

from .io import load_records, save_records, save_result_summary
from .quantiles import band_spread, quantile_bands
from .regret import (compare_report, evaluations_to_regret,
                     fraction_of_optimum_trajectory,
                     labeled_regret_trajectories, regret_summary,
                     regret_trajectory)
from .topk import (cache_hit_fraction, evaluations_per_agent,
                   top_k_architectures, unique_architectures)
from .trajectory import (best_so_far_trajectory, binned_mean_trajectory,
                         rolling_mean_trajectory, time_to_reward)

__all__ = ['band_spread', 'best_so_far_trajectory', 'binned_mean_trajectory', 'cache_hit_fraction', 'compare_report', 'evaluations_per_agent', 'evaluations_to_regret', 'fraction_of_optimum_trajectory', 'labeled_regret_trajectories', 'load_records', 'quantile_bands', 'regret_summary', 'regret_trajectory', 'rolling_mean_trajectory', 'save_records', 'save_result_summary', 'time_to_reward', 'top_k_architectures', 'unique_architectures']
