"""Reward-trajectory analysis (Figs. 4, 6, 11, 13).

The paper's analytics module "parses the logs from the NAS to extract
the reward trajectory over time"; here the log is the list of
:class:`~repro.search.base.RewardRecord` a run produced.
"""

from __future__ import annotations

import numpy as np

from ..search.base import RewardRecord

__all__ = ["rolling_mean_trajectory", "best_so_far_trajectory",
           "binned_mean_trajectory", "time_to_reward"]


def _sorted(records: list[RewardRecord]) -> list[RewardRecord]:
    return sorted(records, key=lambda r: r.time)


def best_so_far_trajectory(records: list[RewardRecord]
                           ) -> np.ndarray:
    """(minutes, best-so-far reward) rows, one per evaluation."""
    recs = _sorted(records)
    out = np.zeros((len(recs), 2))
    best = -np.inf
    for i, r in enumerate(recs):
        best = max(best, r.reward)
        out[i] = (r.time / 60.0, best)
    return out


def rolling_mean_trajectory(records: list[RewardRecord], window: int = 100
                            ) -> np.ndarray:
    """(minutes, rolling-mean reward) rows — the smoothed reward-over-time
    curve plotted in Fig. 4."""
    recs = _sorted(records)
    if not recs:
        return np.zeros((0, 2))
    rewards = np.array([r.reward for r in recs])
    times = np.array([r.time / 60.0 for r in recs])
    window = max(1, min(window, len(rewards)))
    kernel = np.ones(window) / window
    smooth = np.convolve(rewards, kernel, mode="valid")
    return np.column_stack([times[window - 1:], smooth])


def binned_mean_trajectory(records: list[RewardRecord],
                           bin_minutes: float = 15.0,
                           end_minutes: float | None = None) -> np.ndarray:
    """(bin-end minutes, mean reward in bin) rows; empty bins carry NaN."""
    recs = _sorted(records)
    if not recs:
        return np.zeros((0, 2))
    end = end_minutes or recs[-1].time / 60.0
    edges = np.arange(0.0, end + bin_minutes, bin_minutes)
    times = np.array([r.time / 60.0 for r in recs])
    rewards = np.array([r.reward for r in recs])
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (times >= lo) & (times < hi)
        rows.append((hi, float(rewards[mask].mean()) if mask.any()
                     else float("nan")))
    return np.array(rows)


def time_to_reward(records: list[RewardRecord], threshold: float
                   ) -> float | None:
    """Minutes until the best-so-far reward first reaches ``threshold``
    (None if never) — the paper's "A3C reaches reward values of 0.5 ...
    in approximately 70 minutes" statistic."""
    best = -np.inf
    for r in _sorted(records):
        if r.reward > best:
            best = r.reward
            if best >= threshold:
                return r.time / 60.0
    return None
