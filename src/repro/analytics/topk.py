"""Top-architecture extraction and uniqueness statistics.

The paper's analytics module finds "the best architectures ... and
number of unique architectures evaluated"; after a search, the top 50
by estimated reward go to post-training (§5).
"""

from __future__ import annotations

import math
from collections import Counter

from ..nas.arch import Architecture
from ..search.base import RewardRecord

__all__ = ["top_k_architectures", "unique_architectures",
           "cache_hit_fraction", "evaluations_per_agent"]


def _rank_key(rec: RewardRecord) -> float:
    """Reward with NaN pinned to -inf.  NaN compares False both ways, so
    a naive ``rec.reward > cur.reward`` can neither displace a NaN
    record nor rank it last — a NaN that sneaks into the reward stream
    (guards off) would otherwise squat in the top-k forever."""
    return -math.inf if math.isnan(rec.reward) else rec.reward


def top_k_architectures(records: list[RewardRecord], k: int = 50
                        ) -> list[RewardRecord]:
    """Best record per distinct architecture, highest reward first.
    NaN rewards rank strictly below every finite (and ±inf) reward."""
    best: dict[tuple, RewardRecord] = {}
    for rec in records:
        cur = best.get(rec.arch.key)
        if cur is None or _rank_key(rec) > _rank_key(cur):
            best[rec.arch.key] = rec
    return sorted(best.values(), key=lambda r: -_rank_key(r))[:k]


def unique_architectures(records: list[RewardRecord]) -> int:
    return len({rec.arch.key for rec in records})


def cache_hit_fraction(records: list[RewardRecord]) -> float:
    if not records:
        return 0.0
    return sum(rec.cached for rec in records) / len(records)


def evaluations_per_agent(records: list[RewardRecord]) -> dict[int, int]:
    return dict(Counter(rec.agent_id for rec in records))
