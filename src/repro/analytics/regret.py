"""Exact-regret analytics against a benchmark table's global optimum.

Only possible in tabular benchmark mode: because a swept
:class:`~repro.bench.table.ArchTable` knows the true optimum of its
(sub-)space, a search trajectory can be scored with *exact* regret —
``optimum − best-so-far`` — instead of the usual "best reward we
happened to see" proxies.  This is the NAS-Bench-201 evaluation
protocol: method comparisons become exact, seeds become cheap, and
"how close to optimal, how fast" replaces "whose curve looks higher".
"""

from __future__ import annotations

import numpy as np

from ..search.base import RewardRecord

__all__ = ["regret_trajectory", "fraction_of_optimum_trajectory",
           "evaluations_to_regret", "regret_summary",
           "labeled_regret_trajectories", "compare_report"]


def _best_so_far(records: list[RewardRecord]) -> np.ndarray:
    """(minutes, best-so-far reward) rows in completion order."""
    recs = sorted(records, key=lambda r: r.time)
    out = np.zeros((len(recs), 2))
    best = -np.inf
    for i, r in enumerate(recs):
        if not np.isnan(r.reward):
            best = max(best, r.reward)
        out[i] = (r.time / 60.0, best)
    return out


def regret_trajectory(records: list[RewardRecord],
                      optimum: float) -> np.ndarray:
    """(minutes, exact regret of best-so-far) rows, one per evaluation.

    Regret is clipped at 0: a table replay can never exceed the
    table's own optimum, but mixed analyses (e.g. a live-training run
    scored against a table optimum) might, and negative regret would
    only obscure "reached the optimum"."""
    traj = _best_so_far(records)
    if len(traj) == 0:
        return np.zeros((0, 2))
    return np.column_stack([traj[:, 0],
                            np.maximum(0.0, optimum - traj[:, 1])])


def fraction_of_optimum_trajectory(records: list[RewardRecord],
                                   optimum: float,
                                   floor: float = -1.0) -> np.ndarray:
    """(minutes, best-so-far as a fraction of optimum) rows.

    Rewards are normalized over ``[floor, optimum]`` (the floor defaults
    to the paper's ``FAILURE_REWARD``), so 0.0 = everything failed and
    1.0 = global optimum found; degenerate tables (optimum == floor)
    report 1.0 throughout.
    """
    traj = _best_so_far(records)
    if len(traj) == 0:
        return np.zeros((0, 2))
    span = optimum - floor
    if span <= 0:
        frac = np.ones(len(traj))
    else:
        frac = np.clip((traj[:, 1] - floor) / span, 0.0, 1.0)
    return np.column_stack([traj[:, 0], frac])


def evaluations_to_regret(records: list[RewardRecord], optimum: float,
                          threshold: float = 0.0) -> int | None:
    """Evaluations (1-based, in completion order) until exact regret
    first drops to ``threshold`` or below; None if it never does."""
    best = -np.inf
    for i, rec in enumerate(sorted(records, key=lambda r: r.time)):
        if not np.isnan(rec.reward):
            best = max(best, rec.reward)
        if optimum - best <= threshold:
            return i + 1
    return None


def regret_summary(records: list[RewardRecord], optimum: float,
                   method: str | None = None) -> dict:
    """Scalar regret metrics of one run against a table optimum.

    ``method`` labels the summary (a ``"method"`` key) so multi-method
    comparisons stay self-describing once summaries are pooled.
    """
    traj = regret_trajectory(records, optimum)
    frac = fraction_of_optimum_trajectory(records, optimum)
    to_opt = evaluations_to_regret(records, optimum)
    out = {
        "evaluations": len(records),
        "final_regret": float(traj[-1, 1]) if len(traj) else None,
        "final_fraction_of_optimum": (float(frac[-1, 1])
                                      if len(frac) else None),
        "found_optimum": to_opt is not None,
        "evaluations_to_optimum": to_opt,
        "evaluations_to_regret_0.05":
            evaluations_to_regret(records, optimum, 0.05),
    }
    if method is not None:
        out["method"] = method
    return out


def labeled_regret_trajectories(runs: dict[str, list[list[RewardRecord]]],
                                optimum: float) -> dict[str, list]:
    """Method-labeled regret trajectories over seeded replays.

    ``runs`` maps a method name to its replicate record lists (the
    ``compare_report`` input); the result maps each method to one
    ``[[minutes, regret], ...]`` trajectory per replicate, ready for a
    one-command a3c-vs-ambs-vs-evolution regret plot.
    """
    return {name: [regret_trajectory(recs, optimum).tolist()
                   for recs in replicates]
            for name, replicates in runs.items()}


def compare_report(runs: dict[str, list[list[RewardRecord]]],
                   optimum: float,
                   trajectories: bool = False) -> dict:
    """Method-comparison report over seeded replays of one table.

    ``runs`` maps a method name to its replicate record lists (one per
    seed).  Per method the report aggregates final regret (mean / min /
    max across replicates) and how many replicates found the exact
    optimum — the ``repro.bench compare`` payload.  With
    ``trajectories`` the report also carries each method's full
    per-replicate regret trajectories
    (:func:`labeled_regret_trajectories`).
    """
    methods = {}
    for name, replicates in runs.items():
        summaries = [regret_summary(recs, optimum, method=name)
                     for recs in replicates]
        finals = [s["final_regret"] for s in summaries
                  if s["final_regret"] is not None]
        methods[name] = {
            "replicates": len(replicates),
            "mean_final_regret": (float(np.mean(finals))
                                  if finals else None),
            "min_final_regret": float(np.min(finals)) if finals else None,
            "max_final_regret": float(np.max(finals)) if finals else None,
            "optimum_hits": sum(s["found_optimum"] for s in summaries),
            "mean_evaluations": float(np.mean(
                [s["evaluations"] for s in summaries])),
            "per_replicate": summaries,
        }
    report = {"optimum": float(optimum), "methods": methods}
    if trajectories:
        report["trajectories"] = labeled_regret_trajectories(runs, optimum)
    return report
