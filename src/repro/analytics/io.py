"""Search-log persistence: JSON-lines export/import of reward records.

The paper's analytics module parses the logs a NAS run leaves behind
(reward trajectory, best architectures, unique-architecture counts).
Here a run's records serialize to a JSON-lines file with a header line
describing the run, so analyses can be re-run offline and across
processes.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..nas.arch import Architecture
from ..search.base import RewardRecord, SearchResult

__all__ = ["save_records", "load_records", "save_result_summary"]

_FORMAT_VERSION = 1


def save_records(records: list[RewardRecord], path: str | Path,
                 metadata: dict | None = None) -> None:
    """Write records as JSON lines; the first line is a header."""
    path = Path(path)
    header = {"format": "repro-nas-log", "version": _FORMAT_VERSION,
              "num_records": len(records), "metadata": metadata or {}}
    with path.open("w") as fh:
        fh.write(json.dumps(header) + "\n")
        for rec in records:
            fh.write(json.dumps({
                "time": rec.time, "agent_id": rec.agent_id,
                "arch": rec.arch.to_dict(), "reward": rec.reward,
                "params": rec.params, "duration": rec.duration,
                "cached": rec.cached, "timed_out": rec.timed_out,
            }) + "\n")


def load_records(path: str | Path) -> tuple[list[RewardRecord], dict]:
    """Read a JSON-lines log; returns (records, metadata)."""
    path = Path(path)
    with path.open() as fh:
        header = json.loads(fh.readline())
        if header.get("format") != "repro-nas-log":
            raise ValueError(f"{path} is not a repro NAS log")
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported log version {header.get('version')}")
        records = []
        for line in fh:
            d = json.loads(line)
            records.append(RewardRecord(
                time=d["time"], agent_id=d["agent_id"],
                arch=Architecture.from_dict(d["arch"]), reward=d["reward"],
                params=d["params"], duration=d["duration"],
                cached=d["cached"], timed_out=d["timed_out"]))
    if len(records) != header["num_records"]:
        raise ValueError(
            f"truncated log: expected {header['num_records']} records, "
            f"found {len(records)}")
    return records, header.get("metadata", {})


def save_result_summary(result: SearchResult, path: str | Path) -> None:
    """Write a one-file JSON summary of a finished run (trajectory,
    top architectures, utilization trace)."""
    top = result.top_k(50)
    summary = {
        "method": result.config.method,
        "allocation": {
            "total_nodes": result.config.allocation.total_nodes,
            "num_agents": result.config.allocation.num_agents,
            "workers_per_agent": result.config.allocation.workers_per_agent,
        },
        "wall_time": result.config.wall_time,
        "seed": result.config.seed,
        "end_time": result.end_time,
        "converged": result.converged,
        "num_evaluations": result.num_evaluations,
        "unique_architectures": result.unique_architectures,
        "best": {"arch": result.best().arch.to_dict(),
                 "reward": result.best().reward} if result.records else None,
        "top": [{"arch": t.arch.to_dict(), "reward": t.reward,
                 "params": t.params} for t in top],
        "utilization": result.utilization_trace(bin_minutes=15.0),
    }
    Path(path).write_text(json.dumps(summary, indent=2))
