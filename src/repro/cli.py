"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``spaces``
    List the available search spaces and their exact cardinalities.
``baselines``
    Print the manually designed networks' parameter counts (paper scale).
``search``
    Run a simulated NAS experiment and write a JSON-lines log.
``analyze``
    Summarize a search log (trajectory, top architectures, uniqueness).
``posttrain``
    Post-train the top architectures of a search log against the
    baseline and print the ratio table.
``verify``
    Run the correctness battery (differential tester, gradient checks,
    determinism fingerprints); see ``python -m repro.verify --help``.
``bench``
    Tabular benchmark mode (sweep / info / compare); see
    ``python -m repro.bench --help`` and ``docs/benchmark.md``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analytics import (best_so_far_trajectory, cache_hit_fraction,
                        time_to_reward, top_k_architectures,
                        unique_architectures)
from .analytics.io import load_records, save_records
from .health import GuardConfig
from .hpc import NodeAllocation, TrainingCostModel
from .nas.spaces import SPACES, get_space
from .posttrain import post_train
from .problems import get_problem
from .problems.combo import COMBO_PAPER_SHAPES, combo_head
from .problems.nt3 import NT3_PAPER_SHAPES, nt3_head
from .problems.uno import UNO_PAPER_SHAPES, uno_head
from .events import JsonlSink
from .rewards import SurrogateReward
from .search import NasSearch, SEARCH_METHODS, SearchConfig, resume_durable
from .search.checkpoint import SearchCheckpoint

__all__ = ["main"]

_PAPER = {
    "combo": (COMBO_PAPER_SHAPES, combo_head, TrainingCostModel.combo_paper),
    "uno": (UNO_PAPER_SHAPES, uno_head, TrainingCostModel.uno_paper),
    "nt3": (NT3_PAPER_SHAPES, nt3_head, TrainingCostModel.nt3_paper),
}


def _cmd_spaces(_args) -> int:
    print(f"{'space':<14} {'decisions':>10} {'cardinality':>14}")
    for name in SPACES:
        space = get_space(name)
        print(f"{name:<14} {space.num_actions:>10} {space.size:>14.4e}")
    return 0


def _cmd_baselines(_args) -> int:
    print(f"{'benchmark':<10} {'paper-scale parameters':>24}")
    for name in ("combo", "uno", "nt3"):
        problem = get_problem(name)
        print(f"{name:<10} {problem.baseline_params(paper_scale=True):>24,}")
    return 0


def _space_name(problem: str, size: str) -> str:
    name = f"{problem}-{size}"
    if name not in SPACES:
        raise SystemExit(f"no space {name!r}; NT3 only has a small space")
    return name


def _cmd_search(args) -> int:
    if getattr(args, "list_methods", False):
        print(f"{'method':<10} {'learns':>6}  summary")
        for name in sorted(SEARCH_METHODS):
            m = SEARCH_METHODS[name]
            print(f"{name:<10} {'yes' if m.learns else 'no':>6}  "
                  f"{m.summary}")
        return 0
    shapes, head, cost = _PAPER[args.problem]
    space = get_space(_space_name(args.problem, args.size))
    reward = SurrogateReward(
        space, shapes, head(), cost(),
        epochs=1, train_fraction=args.fraction, timeout=600.0,
        seed=args.landscape_seed)
    alloc = NodeAllocation.paper_scaling(args.nodes, args.scaling)
    guard_mode = getattr(args, "guard_mode", "off")
    guard = (GuardConfig(mode=guard_mode)
             if guard_mode != "off" else None)
    backend = getattr(args, "backend", "balsam")
    cfg = SearchConfig(method=args.method, allocation=alloc,
                       wall_time=args.minutes * 60.0, seed=args.seed,
                       guard=guard,
                       max_restarts=getattr(args, "max_restarts", 0),
                       backend=backend,
                       max_iterations=getattr(args, "iterations", None),
                       preemptible=getattr(args, "preempt", False),
                       checkpoint_path=getattr(args, "checkpoint_path",
                                               None),
                       journal_dir=getattr(args, "journal_dir", None),
                       journal_fsync_every=getattr(args,
                                                   "journal_fsync_every",
                                                   None),
                       checkpoint_every_records=getattr(
                           args, "checkpoint_every_records", None))
    print(f"running {args.method} on {space.name} "
          f"({alloc.num_agents} agents x {alloc.workers_per_agent} "
          f"workers, {args.minutes:.0f} simulated min, "
          f"{backend} backend) ...")
    # the event stream goes straight to disk, one flushed line per
    # event, so a crashed or preempted run keeps everything emitted so
    # far (a torn trailing line is tolerated by events.read_events)
    sink = (JsonlSink(args.events,
                      fsync_every=getattr(args, "events_fsync_every", None))
            if getattr(args, "events", None) else None)
    resume_path = getattr(args, "resume", None)
    try:
        if getattr(args, "resume_durable", False):
            # crash-anywhere restart: load the newest intact checkpoint
            # generation and replay the journal suffix so completed
            # evaluations are never re-executed
            search = resume_durable(space, reward, cfg, event_sink=sink)
        elif resume_path:
            ckpt = SearchCheckpoint.load(resume_path)
            search = NasSearch(space, reward, cfg, resume_from=ckpt,
                               event_sink=sink)
        else:
            search = NasSearch(space, reward, cfg, event_sink=sink)
        if search.num_replay_loaded:
            print(f"resume: {search.num_replay_loaded} journaled "
                  f"evaluation(s) armed for replay")
        result = search.run()
    finally:
        if sink is not None:
            sink.close()
    if sink is not None:
        print(f"{sink.num_written} events streamed to {args.events}")
    if result.preempted:
        where = cfg.checkpoint_path or "search.checkpoints[-1]"
        print(f"preempted; resumable checkpoint at {where} "
              f"(rerun with --resume to continue)")
    best = (f"{result.best().reward:.3f}" if result.records else "n/a")
    print(f"evaluations: {result.num_evaluations} "
          f"({result.unique_architectures} unique); "
          f"best reward: {best}; "
          f"utilization: "
          f"{result.cluster.mean_utilization(max(result.end_time, 1e-9)):.2f}")
    if guard is not None or cfg.max_restarts:
        print(f"health: rollbacks={result.num_rollbacks} "
              f"restarts={result.num_restarts}")
    if result.worker_stats:
        ws = result.worker_stats
        print(f"workers: spawns={ws.get('worker_spawns', 0)} "
              f"crashes={ws.get('worker_crashes', 0)} "
              f"timeouts={ws.get('worker_timeouts', 0)} "
              f"respawns={ws.get('respawns', 0)} "
              f"quarantined={ws.get('quarantined', 0)}")
    if args.output:
        save_records(result.records, args.output, metadata={
            "problem": args.problem, "size": args.size,
            "method": args.method, "nodes": args.nodes,
            "fraction": args.fraction, "seed": args.seed})
        print(f"log written to {args.output}")
    return 0


def _cmd_analyze(args) -> int:
    records, metadata = load_records(args.log)
    print(f"log: {args.log} ({len(records)} records, metadata={metadata})")
    print(f"unique architectures: {unique_architectures(records)}")
    print(f"cache-hit fraction: {cache_hit_fraction(records):.2f}")
    traj = best_so_far_trajectory(records)
    print(f"final best reward: {traj[-1, 1]:.3f}")
    t50 = time_to_reward(records, 0.5)
    print(f"time to reward 0.5: {'%.0f min' % t50 if t50 else 'not reached'}")
    print(f"\ntop {args.top} architectures:")
    for rec in top_k_architectures(records, args.top):
        print(f"  reward={rec.reward:+.3f} params={rec.params:>12,} "
              f"{rec.arch}")
    return 0


def _cmd_posttrain(args) -> int:
    records, metadata = load_records(args.log)
    problem_name = metadata.get("problem") or args.problem
    if problem_name is None:
        raise SystemExit("log has no problem metadata; pass --problem")
    problem = get_problem(problem_name)
    _, _, cost = _PAPER[problem_name]
    top = top_k_architectures(records, args.top)
    report = post_train(problem, [t.arch for t in top], epochs=args.epochs,
                        time_model=cost())
    print(f"baseline: metric={report.baseline_metric:.4f} "
          f"params={report.baseline_params:,}")
    print(f"{'acc_ratio':>9} {'Pb/P':>8} {'Tb/T':>8} {'params':>12}")
    for e in sorted(report.entries, key=lambda e: -e.accuracy_ratio):
        print(f"{e.accuracy_ratio:9.3f} {e.params_ratio:8.2f} "
              f"{e.time_ratio:8.2f} {e.params:12,}")
    return 0


def _cmd_verify(args) -> int:
    """Forward to the verification battery's own CLI."""
    from .verify.cli import main as verify_main
    return verify_main(args.verify_args or ["all"])


def _cmd_bench(args) -> int:
    """Forward to the tabular-benchmark CLI."""
    from .bench.cli import main as bench_main
    return bench_main(args.bench_args or ["--help"])


_FIGURES = ("fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig11",
            "fig13", "table1")


def _cmd_figure(args) -> int:
    """Regenerate one of the paper's figures/tables as printed series."""
    from . import experiments as ex

    problem = args.problem or "combo"
    if args.figure == "fig4":
        results = {m: ex.run_cached(problem, m) for m in ("a3c", "a2c",
                                                          "rdm")}
        ex.print_trajectories(f"Fig 4 ({problem}, small space)", results)
    elif args.figure == "fig5":
        results = {m: ex.run_cached(problem, m) for m in ("a3c", "a2c",
                                                          "rdm")}
        ex.print_utilizations(f"Fig 5 ({problem}, small space)", results)
    elif args.figure == "fig6":
        results = {m: ex.run_cached("combo", m, size="large")
                   for m in ("a3c", "a2c", "rdm")}
        ex.print_trajectories("Fig 6a (combo, large space)", results)
        ex.print_utilizations("Fig 6b (combo, large space)", results)
    elif args.figure == "fig7":
        result = ex.run_cached(problem, "a3c")
        ex.print_posttrain(f"Fig 7 ({problem}, small space)",
                           ex.post_train_top(problem, result))
    elif args.figure == "fig8":
        result = ex.run_cached(problem, "a3c", size="large")
        ex.print_posttrain(f"Fig 8 ({problem}, large space)",
                           ex.post_train_top(problem, result, large=True))
    elif args.figure == "fig9":
        configs = {"256": (256, "agents"), "512-w": (512, "workers"),
                   "1024-w": (1024, "workers"), "512-a": (512, "agents"),
                   "1024-a": (1024, "agents")}
        results = {name: ex.run_cached("combo", "a3c", size="large",
                                       nodes=n, mode=m)
                   for name, (n, m) in configs.items()}
        ex.print_utilizations("Fig 9 (combo large, scaling)", results)
    elif args.figure == "fig11":
        results = {f"{int(f * 100)}%": ex.run_cached(
            "combo", "a3c", size="large", train_fraction=f)
            for f in (0.1, 0.2, 0.3, 0.4)}
        ex.print_trajectories("Fig 11 (combo large, fidelity)", results)
    elif args.figure == "fig13":
        from .analytics import quantile_bands
        from .search import SearchConfig, run_search
        reps = []
        for seed in range(5):
            cfg = SearchConfig(method="a3c", allocation=ex.allocation(256),
                               wall_time=ex.WALL_MINUTES * 60.0,
                               seed=100 + seed)
            reps.append(run_search(ex.space_for("combo"),
                                   ex.surrogate_for("combo"), cfg))
        grid = np.linspace(ex.WALL_MINUTES * 0.15,
                           ex.WALL_MINUTES * 0.95, 9)
        bands = quantile_bands([r.records for r in reps], grid)
        print("t(min)   q10    q50    q90")
        for t, row in zip(grid, bands):
            print(f"{t:6.0f} {row[0]:6.3f} {row[1]:6.3f} {row[2]:6.3f}")
    else:  # table1
        for prob in ("combo", "uno", "nt3"):
            result = ex.run_cached(prob, "a3c")
            report = ex.post_train_top(prob, result)
            rows = report.summary_rows()
            print(f"\n{prob}:")
            for row in rows:
                print(f"  {row['network']:<18} params={row['params']:>12,} "
                      f"time={row['train_time_s']:>9.1f}s "
                      f"metric={row['metric']:.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalable RL-based NAS for cancer DL (SC 2019 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("spaces", help="list search spaces").set_defaults(
        fn=_cmd_spaces)
    sub.add_parser("baselines",
                   help="paper-scale baseline parameter counts"
                   ).set_defaults(fn=_cmd_baselines)

    p = sub.add_parser("search", help="run a simulated NAS experiment")
    p.add_argument("--problem", choices=("combo", "uno", "nt3"),
                   default="combo")
    p.add_argument("--size", choices=("small", "large"), default="small")
    p.add_argument("--method", choices=tuple(sorted(SEARCH_METHODS)),
                   default="a3c")
    p.add_argument("--list-methods", action="store_true",
                   help="list the registered search methods and exit")
    p.add_argument("--nodes", type=int, default=256,
                   choices=(256, 512, 1024))
    p.add_argument("--scaling", choices=("agents", "workers"),
                   default="agents")
    p.add_argument("--minutes", type=float, default=360.0,
                   help="simulated wall-clock minutes")
    p.add_argument("--fraction", type=float, default=0.1,
                   help="training-data fraction for reward estimation")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--landscape-seed", type=int, default=7,
                   help="seed of the surrogate reward landscape")
    p.add_argument("--output", help="write a JSON-lines log here")
    p.add_argument("--events",
                   help="write the structured search-event stream "
                        "(repro.events) as JSON lines here")
    p.add_argument("--events-fsync-every", type=int, metavar="N",
                   help="fsync the --events stream every Nth record "
                        "(default: flush only, no fsync)")
    p.add_argument("--guard-mode", choices=("off", "check", "recover"),
                   default="off",
                   help="numerical health guards (repro.health): check "
                        "= detect and crash the offending agent, "
                        "recover = roll back + LR backoff first")
    p.add_argument("--max-restarts", type=int, default=0,
                   help="resurrect a crashed agent from its last "
                        "iteration boundary up to this many times")
    p.add_argument("--backend",
                   choices=("balsam", "serial", "thread", "process"),
                   default="balsam",
                   help="evaluation backend: balsam = simulated service "
                        "(default); serial/thread/process run the reward "
                        "model in host time (process = supervised worker "
                        "pool) and require --iterations")
    p.add_argument("--iterations", type=int,
                   help="stop every agent after this many iterations "
                        "(required for non-balsam backends)")
    p.add_argument("--preempt", action="store_true",
                   help="handle SIGTERM/SIGINT gracefully: stop at the "
                        "next event boundary, capture a resumable "
                        "checkpoint (see --checkpoint-path), and exit "
                        "cleanly")
    p.add_argument("--checkpoint-path",
                   help="write the most recent checkpoint (periodic or "
                        "preemption) to this JSON file")
    p.add_argument("--resume",
                   help="resume from a checkpoint JSON written by "
                        "--checkpoint-path")
    p.add_argument("--journal-dir",
                   help="durability root: write a checksummed "
                        "write-ahead journal of every search event plus "
                        "verified checkpoint generations under this "
                        "directory (repro.search.journal)")
    p.add_argument("--journal-fsync-every", type=int, metavar="N",
                   help="fsync the journal every Nth record (default: "
                        "flush only; requires --journal-dir)")
    p.add_argument("--checkpoint-every-records", type=int, metavar="N",
                   help="capture a checkpoint every N reward records — "
                        "the durability clock that works on every "
                        "backend, including host-time ones where the "
                        "simulated interval timer never fires")
    p.add_argument("--resume-durable", action="store_true",
                   help="resume a crashed run from --journal-dir: load "
                        "the newest intact checkpoint generation and "
                        "replay the journal suffix (completed "
                        "evaluations are never re-executed)")
    p.set_defaults(fn=_cmd_search)

    p = sub.add_parser("analyze", help="summarize a search log")
    p.add_argument("log")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("posttrain", help="post-train a log's top archs")
    p.add_argument("log")
    p.add_argument("--problem", choices=("combo", "uno", "nt3"))
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--epochs", type=int, default=10)
    p.set_defaults(fn=_cmd_posttrain)

    p = sub.add_parser("figure",
                       help="regenerate one of the paper's figures")
    p.add_argument("figure", choices=_FIGURES)
    p.add_argument("--problem", choices=("combo", "uno", "nt3"))
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser("verify",
                       help="correctness battery (see repro.verify)")
    p.add_argument("verify_args", nargs=argparse.REMAINDER,
                   help="arguments for python -m repro.verify")
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser("bench",
                       help="tabular benchmark mode (see repro.bench)")
    p.add_argument("bench_args", nargs=argparse.REMAINDER,
                   help="arguments for python -m repro.bench")
    p.set_defaults(fn=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
