# Developer entry points.  Everything runs from the source tree
# (PYTHONPATH=src), no install required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast lint smoke chaos crashfuzz verify bench bench-quick bench-check bench-table

## label recorded with each 'make bench' entry in BENCH_substrate.json
BENCH_LABEL ?= dev

## full tier-1 test suite
test:
	$(PYTHON) -m pytest -q

## quick inner-loop subset (everything not marked slow/chaos/verify)
test-fast:
	$(PYTHON) -m pytest -q -m fast

## correctness battery: verify-marked tests (50-arch differential
## acceptance, full gradient suite, resume fingerprints) plus the CLI
## battery, which appends its matrix to VERIFY_report.json
verify:
	$(PYTHON) -m pytest -q -m verify
	$(PYTHON) -m repro.verify all --output VERIFY_report.json

## static hygiene: import-cycle check over src/repro (stdlib, always
## runs), the ≤60-line function budget over the search-runtime seam
## modules, byte-compile sanity, and ruff (skipped with a notice when
## the environment doesn't ship it — config lives in pyproject.toml)
lint:
	$(PYTHON) tools/check_imports.py
	$(PYTHON) tools/check_runtime_shape.py
	$(PYTHON) -m compileall -q src tools
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tools; \
	else \
		echo "lint: ruff not installed; skipped (cycle + compile checks ran)"; \
	fi

## substrate smoke check: lint gate + core NN/RL tests + one quick
## benchmark pass + the bench regression gate over BENCH_substrate.json
## + a bounded crash-point fuzzing pass (a3c/ambs/evolution on serial)
smoke: lint bench-table
	$(PYTHON) -m repro.perf --help >/dev/null  # import sanity
	$(PYTHON) -c "import sys; from repro.perf import smoke; sys.exit(smoke([]))"
	$(PYTHON) tools/check_bench.py
	$(PYTHON) -m repro.search.chaos --profile crashpoint \
		--methods a3c,ambs,evolution --backends serial --points 1

## tabular-benchmark smoke: sweep a tiny capped Combo sub-space into a
## resumable arch→metrics table (repro.bench), re-enter it to prove the
## resume path, then replay seeded searches of every method family
## (a3c/rdm/ambs/evolution) against the table and print the
## exact-regret comparison (docs/benchmark.md)
bench-table:
	rm -rf .bench_table
	$(PYTHON) -m repro.bench sweep --problem combo --cap-ops 2 --cap 128 \
		--out .bench_table --backend thread --workers 2 --shard-size 64
	$(PYTHON) -m repro.bench sweep --problem combo --cap-ops 2 --cap 128 \
		--out .bench_table --backend thread --workers 2 --shard-size 64
	$(PYTHON) -m repro.bench info .bench_table
	$(PYTHON) -m repro.bench compare .bench_table \
		--methods a3c,rdm,ambs,evolution --runs 2 --minutes 10 \
		--agents 2 --workers 3 --population 8 --tournament 3

## fault-matrix smoke: seeded fault injection at several failure rates,
## bounded reward degradation, the numerical health-layer profile
## (NaN gradients, exploding updates, corrupt deltas under guard-mode
## recover), and the real-process supervision profile (SIGKILLed
## workers, crashing/hanging evals); then the chaos-, health- and
## proc-marked pytest suites
chaos:
	$(PYTHON) -m repro.search.chaos --profile all
	$(PYTHON) -m pytest -q -m "chaos or health or proc or crashfuzz"

## crash-point fuzzing: SIGKILL a journaled search subprocess at
## stratified journal records, resume from the write-ahead journal, and
## assert bit-identical fingerprints with zero re-evaluated
## architectures (docs/robustness.md); then the crashfuzz pytest tier
crashfuzz:
	$(PYTHON) -m repro.search.chaos --profile crashpoint
	$(PYTHON) -m pytest -q -m crashfuzz

## record substrate baselines into BENCH_substrate.json (labeled entry),
## then run the regression gate over the updated history
bench:
	$(PYTHON) benchmarks/bench_baseline.py --label "$(BENCH_LABEL)"
	$(PYTHON) tools/check_bench.py

## print timings without writing the JSON file
bench-quick:
	$(PYTHON) benchmarks/bench_baseline.py --quick --no-write

## fail when the latest BENCH_substrate.json entry regresses any tracked
## kernel by >15% vs. the best prior entry
bench-check:
	$(PYTHON) tools/check_bench.py
