"""Bench regression gate over ``BENCH_substrate.json``.

Compares the *latest* recorded benchmark entry against the best prior
entry per tracked kernel and exits non-zero when any kernel regressed by
more than the tolerance (default 15%).  ``best_ms`` is the comparison
metric because on shared machines it is the least noise-contaminated
estimate of achievable per-call cost; mean/p50 swing with background
load.

On shared containers the machine itself drifts 20-30% day to day, so
raw milliseconds are not comparable across recording sessions.  Every
entry therefore records a ``machine_calibration`` timing — a fixed,
repo-independent GEMM + elementwise workload measured in the same run —
and the gate compares *normalized* cost (``best_ms / calibration``)
whenever both entries carry it.  Entries predating calibration are
compared absolutely, which conflates machine drift with code changes;
they are reported but only calibrated-vs-calibrated comparisons are
considered sound.  A kernel (or a whole history) with no comparable
prior passes trivially.

Run via ``make bench-check`` (wired into ``make smoke``) or directly::

    python tools/check_bench.py [--file BENCH_substrate.json] [--tolerance 0.15]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

#: kernels guarded against regression.  The calibration workload and
#: aggregate values such as dense_step_speedup (a ratio, not a timing)
#: are deliberately excluded.
TRACKED = (
    "dense_train_step",
    "conv1d_fwd_bwd",
    "ppo_update",
    "lstm_policy_step",
    "compile_architecture_x20",
    "plan_cache_hit_x20",
    "search_iteration",
)

CALIBRATION = "machine_calibration"


def _entry_label(entry: dict, index: int) -> str:
    label = entry.get("label")
    stamp = entry.get("timestamp", "?")
    return f"#{index} [{stamp}] {label}" if label else f"#{index} [{stamp}]"


def _best(entry: dict, kernel: str) -> float | None:
    timing = entry.get("results", {}).get(kernel)
    if isinstance(timing, dict) and "best_ms" in timing:
        return float(timing["best_ms"])
    return None


def check(runs: list[dict], tolerance: float = 0.15) -> list[str]:
    """Return a list of regression messages (empty = gate passes)."""
    if len(runs) < 2:
        return []
    latest = runs[-1]
    cal = _best(latest, CALIBRATION)
    problems = []
    for kernel in TRACKED:
        current = _best(latest, kernel)
        if current is None:
            continue
        if cal is not None:
            # sound path: machine-normalized cost vs. calibrated priors
            prior = [(_best(r, kernel), _best(r, CALIBRATION))
                     for r in runs[:-1]]
            ratios = [k / c for k, c in prior if k is not None
                      and c is not None]
            if not ratios:
                continue  # first calibrated entry for this kernel
            best_prior = min(ratios)
            value, unit = current / cal, "x calibration"
        else:
            # legacy path: absolute milliseconds — machine drift and code
            # regressions are indistinguishable here
            prior = [_best(r, kernel) for r in runs[:-1]]
            ratios = [k for k in prior if k is not None]
            if not ratios:
                continue
            best_prior = min(ratios)
            value, unit = current, " ms"
        limit = best_prior * (1.0 + tolerance)
        if value > limit:
            problems.append(
                f"{kernel}: best {value:.3f}{unit} exceeds {limit:.3f}{unit} "
                f"({best_prior:.3f}{unit} best prior +{tolerance:.0%})")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--file", default=str(ROOT / "BENCH_substrate.json"),
                        help="benchmark history (default: repo-root "
                             "BENCH_substrate.json)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional regression vs. the best "
                             "prior entry (default 0.15)")
    args = parser.parse_args(argv)
    path = Path(args.file)
    if not path.exists():
        print(f"check_bench: {path} missing; nothing to check")
        return 0
    try:
        runs = json.loads(path.read_text())
    except ValueError as exc:
        print(f"check_bench: {path} unreadable: {exc}")
        return 1
    if not isinstance(runs, list):
        runs = [runs]
    if len(runs) < 2:
        print(f"check_bench: {len(runs)} entr{'y' if len(runs) == 1 else 'ies'}"
              " recorded; need two to compare")
        return 0
    problems = check(runs, tolerance=args.tolerance)
    latest = _entry_label(runs[-1], len(runs) - 1)
    if problems:
        print(f"check_bench: {latest} REGRESSED")
        for problem in problems:
            print(f"check_bench:   {problem}")
        return 1
    mode = ("calibration-normalized"
            if _best(runs[-1], CALIBRATION) is not None else "absolute")
    print(f"check_bench: {latest} within {args.tolerance:.0%} of the best "
          f"prior entry ({len(runs)} runs, {mode})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
