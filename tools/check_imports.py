#!/usr/bin/env python
"""Static import-cycle check over ``src/repro`` (stdlib only).

Builds the module-level import graph with :mod:`ast` — only imports
executed at import time count, so function-local (lazy) imports are
deliberately excluded — and fails with the offending strongly connected
components if any cycle exists.  Run via ``make lint`` (and from
``make smoke``) to keep the runtime seams acyclic:

    events ← evaluator ← search.exchange/hooks/loop ← search.runner

Exit status: 0 when acyclic, 1 with a cycle report otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOT_PACKAGE = "repro"


def discover(src: Path) -> dict[str, Path]:
    """Map dotted module names to files under ``src/repro``."""
    modules: dict[str, Path] = {}
    for path in sorted((src / ROOT_PACKAGE).rglob("*.py")):
        rel = path.relative_to(src).with_suffix("")
        parts = list(rel.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        modules[".".join(parts)] = path
    return modules


def _module_level_statements(tree: ast.Module):
    """Statements executed at import time: module body, descending into
    class bodies and conditional/try blocks, but never function bodies."""
    stack = list(tree.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                stack.append(child)


def resolve(module: str, is_package: bool, node, known: set[str]):
    """Yield known in-package modules a statement imports."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            name = alias.name
            while name:
                if name in known:
                    yield name
                    break
                name = name.rpartition(".")[0]
    elif isinstance(node, ast.ImportFrom):
        if node.level == 0:
            base = node.module or ""
        else:
            # relative import: walk up from the importing module
            anchor = module.split(".")
            if not is_package:
                anchor = anchor[:-1]
            anchor = anchor[:len(anchor) - (node.level - 1)]
            base = ".".join(anchor + ([node.module] if node.module else []))
        if not base.startswith(ROOT_PACKAGE):
            return
        for alias in node.names:
            sub = f"{base}.{alias.name}"
            if sub in known:
                yield sub           # ``from pkg import submodule``
            elif base in known:
                yield base          # ``from module import symbol``


def build_graph(modules: dict[str, Path]) -> dict[str, set[str]]:
    known = set(modules)
    graph: dict[str, set[str]] = {m: set() for m in known}
    for module, path in modules.items():
        tree = ast.parse(path.read_text(), filename=str(path))
        is_package = path.name == "__init__.py"
        for node in _module_level_statements(tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for target in resolve(module, is_package, node, known):
                    if target != module:
                        graph[module].add(target)
    return graph


def find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan SCC; any component with >1 node (or a self-loop) is a cycle."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    cycles: list[list[str]] = []

    def strongconnect(v: str) -> None:
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(graph[v]):
            if w not in index:
                strongconnect(w)
                lowlink[v] = min(lowlink[v], lowlink[w])
            elif w in on_stack:
                lowlink[v] = min(lowlink[v], index[w])
        if lowlink[v] == index[v]:
            component = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.append(w)
                if w == v:
                    break
            if len(component) > 1 or v in graph[v]:
                cycles.append(sorted(component))

    sys.setrecursionlimit(10_000)
    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return cycles


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    src = Path(args[0]) if args else Path(__file__).resolve().parent.parent / "src"
    modules = discover(src)
    if not modules:
        print(f"check_imports: no modules found under {src}", file=sys.stderr)
        return 1
    graph = build_graph(modules)
    cycles = find_cycles(graph)
    if cycles:
        print("check_imports: import cycles detected:", file=sys.stderr)
        for component in cycles:
            print("  " + " <-> ".join(component), file=sys.stderr)
        return 1
    edges = sum(len(v) for v in graph.values())
    print(f"check_imports: {len(modules)} modules, {edges} edges, no cycles")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
