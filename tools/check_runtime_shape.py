#!/usr/bin/env python
"""Static shape gate over the search-runtime seam modules (stdlib only).

The proposer-seam refactor's contract is structural: the runner stays a
thin composition root, the agent loop stays method-agnostic, and each
proposer module stays small enough to read in one sitting.  This gate
enforces the same ≤60-line function budget as
``tests/test_search_runtime.py::TestRunnerShape`` but over *all* the
seam modules, so a future method can't quietly grow a new monolith in
``ambs.py`` or ``evolution.py`` either.  Docstrings don't count against
the budget.  Run via ``make lint``.

Exit status: 0 when every function fits, 1 with an offender report.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

MAX_FUNCTION_LINES = 60

SEAM_MODULES = (
    "src/repro/search/runner.py",
    "src/repro/search/loop.py",
    "src/repro/search/proposer.py",
    "src/repro/search/ambs.py",
    "src/repro/search/evolution.py",
    "src/repro/search/methods.py",
)


def function_length(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> int:
    """Body lines of ``fn``, excluding a leading docstring."""
    body_start = fn.body[0].lineno
    if isinstance(fn.body[0], ast.Expr) and \
            isinstance(fn.body[0].value, ast.Constant):
        body_start = (fn.body[1].lineno if len(fn.body) > 1
                      else fn.end_lineno)
    return fn.end_lineno - body_start + 1


def check_module(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    offenders = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            length = function_length(node)
            if length > MAX_FUNCTION_LINES:
                offenders.append(
                    f"{path}:{node.lineno}: {node.name} is {length} "
                    f"lines (> {MAX_FUNCTION_LINES})")
    return offenders


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent
    offenders: list[str] = []
    checked = 0
    for rel in SEAM_MODULES:
        path = root / rel
        if not path.exists():
            print(f"check_runtime_shape: missing seam module {path}",
                  file=sys.stderr)
            return 1
        offenders.extend(check_module(path))
        checked += 1
    if offenders:
        print("check_runtime_shape: function line budget exceeded:",
              file=sys.stderr)
        for line in offenders:
            print("  " + line, file=sys.stderr)
        return 1
    print(f"check_runtime_shape: {checked} seam modules, every function "
          f"<= {MAX_FUNCTION_LINES} lines")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
